// Golden A/B suite for the kernel hot-path speed program (docs/performance.md).
//
// The perf work (arena'd coroutine frames, SoA tag/state layout, branchless
// sub-block transitions, aligned per-core counters) must not change a single
// simulated outcome. This suite pins that contract: every registered workload
// runs at small scale and both its canonical stats blob AND its full trace
// JSONL timeline are hashed against goldens captured from the pre-optimization
// kernel. Any byte that moves — a counter, a conflict cycle, an event order —
// fails the suite.
//
// Regenerating goldens (ONLY legitimate when the simulated semantics
// deliberately change, never for a perf refactor):
//   ASFSIM_WRITE_GOLDEN=1 ./test_kernel_perf_identity
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/subblock_state.hpp"
#include "harness/experiment.hpp"
#include "sim/random.hpp"
#include "stats/serialize.hpp"
#include "workloads/workload.hpp"

#ifndef ASFSIM_GOLDEN_DIR
#define ASFSIM_GOLDEN_DIR "."
#endif

namespace asfsim {
namespace {

// FNV-1a 64-bit: dependency-free, stable across platforms.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

struct Cell {
  std::string workload;
  DetectorKind detector;
  std::uint32_t nsub;
};

// Every registered workload under the paper's headline detector, plus a
// detector sweep over two representative workloads (one STAMP port, one
// OLTP preset) so the baseline / WAW-line / no-dirty / war-only / perfect
// probe paths are all pinned too.
std::vector<Cell> cells() {
  std::vector<Cell> out;
  for (const WorkloadInfo& w : workload_registry()) {
    out.push_back({w.name, DetectorKind::kSubBlock, 4});
  }
  for (const char* wl : {"vacation", "oltp"}) {
    out.push_back({wl, DetectorKind::kBaseline, 1});
    out.push_back({wl, DetectorKind::kSubBlockWawLine, 4});
    out.push_back({wl, DetectorKind::kSubBlockNoDirty, 4});
    out.push_back({wl, DetectorKind::kWarOnly, 1});
    out.push_back({wl, DetectorKind::kPerfect, 1});
    out.push_back({wl, DetectorKind::kSubBlock, 8});
  }
  return out;
}

ExperimentConfig small_config(const std::string& workload, DetectorKind det,
                              std::uint32_t nsub) {
  ExperimentConfig cfg;
  cfg.detector = det;
  cfg.nsub = nsub;
  cfg.params.threads = 4;
  cfg.sim.ncores = 4;
  cfg.params.seed = 7;
  cfg.params.scale = 0.25;
  if (workload == "oltp") {
    // Contended-KV shape: small hot table, update-heavy mix, strong skew.
    cfg.params.oltp.records = 256;
    cfg.params.oltp.payload_bytes = 16;
    cfg.params.oltp.tx_len = 4;
    cfg.params.oltp.tx_per_thread = 200;
    cfg.params.oltp.theta = 1.1;
    cfg.params.oltp.mix = OltpMix::kA;
  }
  return cfg;
}

std::string cell_key(const Cell& c) {
  std::string key = c.workload;
  key += '/';
  key += to_string(c.detector);
  if (c.nsub != 1) key += "-" + std::to_string(c.nsub);
  return key;
}

std::string golden_path() {
  return std::string(ASFSIM_GOLDEN_DIR) + "/kernel_identity.golden";
}

std::map<std::string, std::pair<std::string, std::string>> load_goldens() {
  std::map<std::string, std::pair<std::string, std::string>> out;
  std::ifstream is(golden_path());
  std::string key, stats_h, trace_h;
  while (is >> key >> stats_h >> trace_h) out[key] = {stats_h, trace_h};
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(KernelPerfIdentity, StatsAndTraceMatchPreOptimizationGoldens) {
  const bool write = std::getenv("ASFSIM_WRITE_GOLDEN") != nullptr;
  const auto goldens = load_goldens();
  const std::filesystem::path tmp = ::testing::TempDir();
  std::ostringstream regen;
  std::vector<std::string> mismatches;

  for (const Cell& c : cells()) {
    const std::string key = cell_key(c);
    const ExperimentConfig cfg = small_config(c.workload, c.detector, c.nsub);
    TraceOptions trace;
    trace.format = TraceFormat::kJsonl;
    trace.path = (tmp / ("identity-" + std::to_string(fnv1a(key)) + ".jsonl"))
                     .string();
    const ExperimentResult r = run_experiment(c.workload, cfg, trace);
    ASSERT_TRUE(r.ok()) << key << ": " << r.validation_error;

    const std::string stats_h = hex(fnv1a(serialize_stats(r.stats)));
    const std::string trace_h = hex(fnv1a(slurp(trace.path)));
    std::filesystem::remove(trace.path);
    regen << key << ' ' << stats_h << ' ' << trace_h << '\n';

    if (write) continue;
    const auto it = goldens.find(key);
    if (it == goldens.end()) {
      mismatches.push_back(key + ": no golden entry");
    } else if (it->second != std::make_pair(stats_h, trace_h)) {
      mismatches.push_back(key + ": stats " + it->second.first + " -> " +
                           stats_h + ", trace " + it->second.second + " -> " +
                           trace_h);
    }
  }

  if (write) {
    std::ofstream os(golden_path(), std::ios::trunc);
    os << regen.str();
    ASSERT_TRUE(os.good()) << "cannot write " << golden_path();
    GTEST_SKIP() << "goldens regenerated at " << golden_path();
  }
  ASSERT_FALSE(goldens.empty())
      << "no goldens at " << golden_path()
      << " — run once with ASFSIM_WRITE_GOLDEN=1 on the reference kernel";
  std::string all;
  for (const std::string& m : mismatches) all += "  " + m + "\n";
  EXPECT_TRUE(mismatches.empty())
      << "simulated outcomes diverged from the pre-optimization kernel:\n"
      << all;
}

// ---- transition LUT vs switch-based reference ------------------------------

// The pre-LUT semantics, written out as the switch the lattice used to be
// expressed through (record_spec_access bit updates + check_probe branches).
SubBlockTransition reference_transition(SubBlockState s, SubBlockEvent e) {
  switch (e) {
    case SubBlockEvent::kTxRead:
      // Own read: spec bit set; an S-WR sub-block stays S-WR; a Dirty
      // sub-block is refetched (mark cleared) and joins the read set.
      return {s == SubBlockState::kSpecWrite ? SubBlockState::kSpecWrite
                                             : SubBlockState::kSpecRead,
              false};
    case SubBlockEvent::kTxWrite:
      return {SubBlockState::kSpecWrite, false};
    case SubBlockEvent::kProbeLoad:
      // Remote load: RAW against S-WR only; everything else keeps its state
      // (dirty marks persist until refetch).
      if (s == SubBlockState::kSpecWrite) return {SubBlockState::kNonSpec, true};
      return {s, false};
    case SubBlockEvent::kProbeStore:
      // Remote store: WAR/WAW against any speculative sub-block; the doomed
      // transaction's bits — and Dirty marks on the dropped line — go away.
      if (s == SubBlockState::kSpecRead || s == SubBlockState::kSpecWrite) {
        return {SubBlockState::kNonSpec, true};
      }
      return {SubBlockState::kNonSpec, false};
  }
  return {SubBlockState::kNonSpec, false};
}

TEST(SubBlockLut, MatchesSwitchReferenceOverAllStateEventPairs) {
  for (std::uint8_t si = 0; si < 4; ++si) {
    for (std::uint8_t ei = 0; ei < 4; ++ei) {
      const auto s = static_cast<SubBlockState>(si);
      const auto e = static_cast<SubBlockEvent>(ei);
      const SubBlockTransition lut = subblock_transition(s, e);
      const SubBlockTransition ref = reference_transition(s, e);
      EXPECT_EQ(lut.next, ref.next)
          << to_string(s) << " x event " << int(ei);
      EXPECT_EQ(lut.conflict, ref.conflict)
          << to_string(s) << " x event " << int(ei);
    }
  }
}

TEST(SubBlockLut, WordWideOpsMatchPerSubBlockLutApplication) {
  // apply_tx / probe_conflicts over a random multi-bit mask must equal
  // looking up the LUT for each sub-block individually.
  Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    SubBlockBits bits;
    bits.spec = static_cast<SubBlockMask>(rng.next_u64());
    // Constrain to the reachable SpecState region: wr ⊆ spec. The Dirty
    // encoding (wr without spec) lives in dirty_marks_, never in a
    // transaction's own SpecState bits — apply_tx is only defined there.
    bits.wr = static_cast<SubBlockMask>(rng.next_u64() & bits.spec);
    const auto m = static_cast<SubBlockMask>(rng.next_u64());
    const bool is_write = (trial & 1) != 0;
    const bool invalidating = (trial & 2) != 0;

    SubBlockBits word = bits;
    word.apply_tx(m, is_write);
    const SubBlockMask conflicts = bits.probe_conflicts(m, invalidating);

    for (std::uint32_t i = 0; i < kMaxSubBlocks; ++i) {
      const SubBlockState old = bits.state(i);
      if (m & (1u << i)) {
        const auto ev =
            is_write ? SubBlockEvent::kTxWrite : SubBlockEvent::kTxRead;
        EXPECT_EQ(word.state(i), subblock_transition(old, ev).next)
            << "sub " << i;
        const auto pev = invalidating ? SubBlockEvent::kProbeStore
                                      : SubBlockEvent::kProbeLoad;
        EXPECT_EQ((conflicts >> i) & 1u,
                  subblock_transition(old, pev).conflict ? 1u : 0u)
            << "sub " << i;
      } else {
        EXPECT_EQ(word.state(i), old) << "untouched sub " << i;
        EXPECT_EQ((conflicts >> i) & 1u, 0u) << "untouched sub " << i;
      }
    }
  }
}

}  // namespace
}  // namespace asfsim
