// Randomized cross-checks: detector decisions are re-derived from first
// principles (brute-force per-sub-block reasoning over the byte masks) for
// thousands of random speculative states and probes.
#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/line_detector.hpp"
#include "core/subblock_detector.hpp"
#include "core/waronly_detector.hpp"
#include "sim/random.hpp"

namespace asfsim {
namespace {

/// A random aligned access mask (size 1..8 bytes).
ByteMask random_access(Rng& rng) {
  const std::uint32_t size = 1u << rng.below(4);  // 1,2,4,8
  const std::uint32_t off = static_cast<std::uint32_t>(
      rng.below(64 / size) * size);
  return byte_mask(off, size);
}

SpecState random_state(Rng& rng, std::uint32_t nsub) {
  SpecState s;
  const std::uint32_t nreads = static_cast<std::uint32_t>(rng.below(4));
  const std::uint32_t nwrites = static_cast<std::uint32_t>(rng.below(3));
  for (std::uint32_t i = 0; i < nreads; ++i) s.read_bytes |= random_access(rng);
  for (std::uint32_t i = 0; i < nwrites; ++i) {
    s.write_bytes |= random_access(rng);
  }
  s.bits.spec = quantize(s.read_bytes | s.write_bytes, nsub);
  s.bits.wr = quantize(s.write_bytes, nsub);
  return s;
}

class CrossCheck : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CrossCheck, SubBlockDetectorMatchesBruteForce) {
  const std::uint32_t nsub = GetParam();
  SubBlockDetector det(nsub);
  Rng rng(nsub * 1000 + 17);
  for (int trial = 0; trial < 4000; ++trial) {
    const SpecState victim = random_state(rng, nsub);
    const ByteMask probe = random_access(rng);
    const bool invalidating = rng.chance(0.5);
    const ProbeCheck pc = det.check_probe(victim, probe, invalidating);

    // Brute force: walk every sub-block.
    bool expect_conflict = false;
    SubBlockMask expect_pb = 0;
    const std::uint32_t sub_bytes = 64 / nsub;
    for (std::uint32_t i = 0; i < nsub; ++i) {
      const ByteMask sub = byte_mask(i * sub_bytes, sub_bytes);
      const bool p = (probe & sub) != 0;
      const bool swr = (victim.bits.spec_written() >> i) & 1;
      const bool srd = (victim.bits.spec_read_only() >> i) & 1;
      if (invalidating) {
        if (p && (swr || srd)) expect_conflict = true;
      } else {
        if (p && swr) expect_conflict = true;
        if (swr) expect_pb |= SubBlockMask{1} << i;
      }
    }
    EXPECT_EQ(pc.conflict, expect_conflict)
        << "trial " << trial << " inv=" << invalidating;
    if (!invalidating && !expect_conflict) {
      EXPECT_EQ(pc.piggyback, expect_pb) << "trial " << trial;
    }
    if (invalidating && !expect_conflict) {
      EXPECT_EQ(pc.retain_spec_info, victim.bits.speculative() != 0)
          << "trial " << trial;
    }
  }
}

TEST_P(CrossCheck, WawLineVariantOnlyAddsWawConflicts) {
  const std::uint32_t nsub = GetParam();
  SubBlockDetector def(nsub);
  SubBlockDetector strict(nsub, true, /*waw_line=*/true);
  Rng rng(nsub * 777 + 3);
  for (int trial = 0; trial < 3000; ++trial) {
    const SpecState victim = random_state(rng, nsub);
    const ByteMask probe = random_access(rng);
    const bool invalidating = rng.chance(0.5);
    const bool d = def.check_probe(victim, probe, invalidating).conflict;
    const bool s = strict.check_probe(victim, probe, invalidating).conflict;
    // Strict is a superset of default...
    if (d) {
      EXPECT_TRUE(s) << "strict must contain default";
    }
    // ...and the extra conflicts are exactly invalidating probes against
    // lines holding S-WR sub-blocks the probe does not touch.
    if (s && !d) {
      EXPECT_TRUE(invalidating);
      EXPECT_NE(victim.bits.spec_written(), 0u);
    }
  }
}

TEST_P(CrossCheck, FinerGranularityNeverAddsConflicts) {
  const std::uint32_t nsub = GetParam();
  if (nsub == 16) return;
  SubBlockDetector coarse(nsub);
  SubBlockDetector fine(nsub * 2);
  Rng rng(nsub * 99 + 1);
  for (int trial = 0; trial < 3000; ++trial) {
    // Build the SAME byte-level state at the two granularities.
    SpecState base = random_state(rng, 16);
    SpecState vc = base, vf = base;
    vc.bits.spec = quantize(base.read_bytes | base.write_bytes, nsub);
    vc.bits.wr = quantize(base.write_bytes, nsub);
    vf.bits.spec = quantize(base.read_bytes | base.write_bytes, nsub * 2);
    vf.bits.wr = quantize(base.write_bytes, nsub * 2);
    const ByteMask probe = random_access(rng);
    const bool invalidating = rng.chance(0.5);
    const bool c = coarse.check_probe(vc, probe, invalidating).conflict;
    const bool f = fine.check_probe(vf, probe, invalidating).conflict;
    if (f) {
      EXPECT_TRUE(c) << "a fine-grained conflict implies a coarse one";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, CrossCheck,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(CrossCheckLine, BaselineEqualsOneSubBlock) {
  // The baseline per-line SR/SW check must agree with "sub-blocking at
  // granularity 1" semantics (any-byte overlap at line level).
  LineDetector line;
  Rng rng(5);
  for (int trial = 0; trial < 4000; ++trial) {
    const SpecState victim = random_state(rng, 1);
    const ByteMask probe = random_access(rng);
    const bool invalidating = rng.chance(0.5);
    const bool got = line.check_probe(victim, probe, invalidating).conflict;
    EXPECT_EQ(got, baseline_would_conflict(victim, invalidating));
  }
}

TEST(CrossCheckTruth, TrueConflictImpliesDetectionEverywhere) {
  // No detector may MISS a true (byte-overlap) conflict on a probe it sees.
  LineDetector line;
  WarOnlyDetector war;
  Rng rng(11);
  for (const std::uint32_t nsub : {2u, 4u, 8u, 16u}) {
    SubBlockDetector sub(nsub);
    for (int trial = 0; trial < 2000; ++trial) {
      const SpecState victim = random_state(rng, nsub);
      const ByteMask probe = random_access(rng);
      const bool invalidating = rng.chance(0.5);
      if (!true_conflict(victim, probe, invalidating)) continue;
      EXPECT_TRUE(line.check_probe(victim, probe, invalidating).conflict);
      EXPECT_TRUE(sub.check_probe(victim, probe, invalidating).conflict);
      EXPECT_TRUE(war.check_probe(victim, probe, invalidating).conflict);
    }
  }
}

}  // namespace
}  // namespace asfsim
