// Unit tests: address math, byte masks, sub-block quantization.
#include <gtest/gtest.h>

#include "mem/addr.hpp"
#include "sim/random.hpp"

namespace asfsim {
namespace {

TEST(Addr, LineDecomposition) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 64u);
  EXPECT_EQ(line_of(0x12345), 0x12340u);
  EXPECT_EQ(line_offset(0), 0u);
  EXPECT_EQ(line_offset(63), 63u);
  EXPECT_EQ(line_offset(64), 0u);
  EXPECT_EQ(line_offset(0x12345), 5u);
}

TEST(Addr, ByteMaskBasics) {
  EXPECT_EQ(byte_mask(0, 1), 0x1ull);
  EXPECT_EQ(byte_mask(0, 8), 0xffull);
  EXPECT_EQ(byte_mask(8, 4), 0xf00ull);
  EXPECT_EQ(byte_mask(56, 8), 0xff00000000000000ull);
  EXPECT_EQ(byte_mask(0, 64), ~ByteMask{0});
}

TEST(Addr, ByteMaskOfAddress) {
  EXPECT_EQ(byte_mask_of(0x100, 8), 0xffull);
  EXPECT_EQ(byte_mask_of(0x104, 4), 0xfull << 4);  // bytes 4..7
  EXPECT_EQ(byte_mask_of(0x13f, 1), ByteMask{1} << 63);
}

TEST(Addr, MasksOfDisjointAccessesAreDisjoint) {
  for (std::uint32_t a = 0; a < 64; a += 8) {
    for (std::uint32_t b = 0; b < 64; b += 8) {
      if (a == b) continue;
      EXPECT_EQ(byte_mask(a, 8) & byte_mask(b, 8), 0u);
    }
  }
}

class QuantizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QuantizeTest, FullLineMapsToAllSubBlocks) {
  const std::uint32_t n = GetParam();
  EXPECT_EQ(quantize(~ByteMask{0}, n), (1u << n) - 1);
}

TEST_P(QuantizeTest, SingleByteMapsToOneSubBlock) {
  const std::uint32_t n = GetParam();
  for (std::uint32_t off = 0; off < 64; ++off) {
    const SubBlockMask q = quantize(byte_mask(off, 1), n);
    EXPECT_EQ(__builtin_popcount(q), 1);
    EXPECT_EQ(q, SubBlockMask{1} << subblock_index(off, n));
  }
}

TEST_P(QuantizeTest, ExpandCoversOriginalMask) {
  const std::uint32_t n = GetParam();
  for (std::uint32_t off = 0; off < 64; off += 3) {
    const std::uint32_t size = 1 + off % 8;
    if (off + size > 64) continue;
    const ByteMask m = byte_mask(off, size);
    EXPECT_EQ(expand(quantize(m, n), n) & m, m)
        << "expansion must cover the quantized bytes";
  }
}

TEST_P(QuantizeTest, QuantizationIsMonotoneInGranularity) {
  // If two masks overlap at finer granularity they overlap at coarser too.
  const std::uint32_t n = GetParam();
  if (n == 16) return;
  for (std::uint32_t a = 0; a < 64; a += 4) {
    for (std::uint32_t b = 0; b < 64; b += 4) {
      const ByteMask ma = byte_mask(a, 4), mb = byte_mask(b, 4);
      const bool fine = (quantize(ma, 2 * n) & quantize(mb, 2 * n)) != 0;
      const bool coarse = (quantize(ma, n) & quantize(mb, n)) != 0;
      if (fine) {
        EXPECT_TRUE(coarse);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SubBlockCounts, QuantizeTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(Addr, BranchlessQuantizeMatchesLoopedReference) {
  // The production quantize() is branchless per sub-block (OR-fold +
  // multiply gather, docs/performance.md); this pins it to the obvious
  // looped definition over random masks, single-byte masks, and the
  // all/none extremes, for every sub-block count.
  const auto reference = [](ByteMask bytes, std::uint32_t nsub) {
    const std::uint32_t sub_bytes = kLineBytes / nsub;
    SubBlockMask out = 0;
    for (std::uint32_t i = 0; i < nsub; ++i) {
      if (bytes & byte_mask(i * sub_bytes, sub_bytes)) {
        out |= static_cast<SubBlockMask>(1u << i);
      }
    }
    return out;
  };
  Rng rng(99);
  for (const std::uint32_t n : {1u, 2u, 4u, 8u, 16u}) {
    EXPECT_EQ(quantize(0, n), reference(0, n));
    EXPECT_EQ(quantize(~ByteMask{0}, n), reference(~ByteMask{0}, n));
    for (std::uint32_t off = 0; off < 64; ++off) {
      const ByteMask one = byte_mask(off, 1);
      EXPECT_EQ(quantize(one, n), reference(one, n)) << off << "/" << n;
    }
    for (int trial = 0; trial < 5000; ++trial) {
      const ByteMask m = rng.next_u64();
      ASSERT_EQ(quantize(m, n), reference(m, n)) << m << "/" << n;
    }
  }
}

TEST(Addr, AdjacentWordsShareCoarseSubBlocksOnly) {
  // Two adjacent 4-byte words: same 8-byte sub-block half the time,
  // never the same 4-byte sub-block.
  const ByteMask w0 = byte_mask(16, 4), w1 = byte_mask(20, 4);
  EXPECT_NE(quantize(w0, 4) & quantize(w1, 4), 0u);   // same 16B sub-block
  EXPECT_NE(quantize(w0, 8) & quantize(w1, 8), 0u);   // same 8B sub-block
  EXPECT_EQ(quantize(w0, 16) & quantize(w1, 16), 0u);  // separate 4B blocks
}

}  // namespace
}  // namespace asfsim
