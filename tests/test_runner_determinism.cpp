// Parallelism must not change results: each simulation is single-threaded
// and deterministic, so a Runner with 8 workers must produce the same
// StatsReports — and figures the same CSV bytes — as a serial run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "harness/figures.hpp"
#include "runner/runner.hpp"
#include "stats/serialize.hpp"

namespace asfsim {
namespace {

using runner::Runner;
using runner::RunnerOptions;

class RunnerDeterminism : public ::testing::Test {
 protected:
  // Keep figure runs out of the real cache/manifest and off the terminal.
  void SetUp() override {
    ::setenv("ASFSIM_CACHE_DIR", "runner_determinism_cache", 1);
    ::setenv("ASFSIM_RUN_MANIFEST", "-", 1);
    ::setenv("ASFSIM_PROGRESS", "0", 1);
  }
  void TearDown() override {
    std::filesystem::remove_all("runner_determinism_cache");
    ::unsetenv("ASFSIM_CACHE_DIR");
    ::unsetenv("ASFSIM_RUN_MANIFEST");
    ::unsetenv("ASFSIM_PROGRESS");
  }
};

RunnerOptions uncached_opts(unsigned jobs) {
  RunnerOptions o;
  o.jobs = jobs;
  o.use_cache = false;
  o.manifest_path = "-";
  o.progress = RunnerOptions::Progress::kOff;
  return o;
}

/// serialize_stats covers every Stats field, so string equality is full
/// StatsReport equality.
std::vector<std::string> run_matrix(unsigned jobs) {
  const char* kWorkloads[] = {"counter", "bank"};
  const DetectorKind kDetectors[] = {DetectorKind::kBaseline,
                                     DetectorKind::kSubBlock,
                                     DetectorKind::kPerfect,
                                     DetectorKind::kWarOnly};
  Runner r(uncached_opts(jobs));
  std::vector<std::shared_future<ExperimentResult>> futs;
  for (const char* w : kWorkloads) {
    for (const DetectorKind d : kDetectors) {
      ExperimentConfig cfg;
      cfg.params.threads = 4;
      cfg.params.scale = 0.25;
      cfg.sim.ncores = 4;
      cfg.detector = d;
      futs.push_back(r.submit(w, cfg));
    }
  }
  std::vector<std::string> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(serialize_stats(f.get().stats));
  return out;
}

TEST_F(RunnerDeterminism, SerialAndJobs8StatsReportsAreIdentical) {
  const auto serial = run_matrix(1);
  const auto parallel = run_matrix(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
  }
}

std::map<std::string, std::string> read_dir_bytes(
    const std::filesystem::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(e.path(), std::ios::binary);
    files[e.path().filename().string()] =
        std::string((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  return files;
}

TEST_F(RunnerDeterminism, Fig2TextAndCsvBytesAreIdenticalUnderJobs8) {
  const std::filesystem::path serial_dir = "runner_determinism_csv_serial";
  const std::filesystem::path parallel_dir = "runner_determinism_csv_jobs8";
  for (const auto& d : {serial_dir, parallel_dir}) {
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
  }

  CliOptions opts;
  opts.scale = 0.25;
  opts.threads = 4;
  opts.no_cache = true;

  opts.jobs = 1;
  opts.csv_dir = serial_dir.string();
  std::ostringstream serial_text;
  ASSERT_EQ(figures::fig2_conflict_type_breakdown(opts, serial_text), 0);

  opts.jobs = 8;
  opts.csv_dir = parallel_dir.string();
  std::ostringstream parallel_text;
  ASSERT_EQ(figures::fig2_conflict_type_breakdown(opts, parallel_text), 0);

  EXPECT_EQ(serial_text.str(), parallel_text.str());

  const auto serial_files = read_dir_bytes(serial_dir);
  const auto parallel_files = read_dir_bytes(parallel_dir);
  ASSERT_FALSE(serial_files.empty());
  ASSERT_EQ(serial_files.size(), parallel_files.size());
  for (const auto& [name, bytes] : serial_files) {
    ASSERT_TRUE(parallel_files.count(name)) << name;
    EXPECT_EQ(bytes, parallel_files.at(name)) << name;
  }

  for (const auto& d : {serial_dir, parallel_dir}) {
    std::filesystem::remove_all(d);
  }
}

}  // namespace
}  // namespace asfsim
