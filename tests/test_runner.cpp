// Runner subsystem: JobSpec canonicalization/hashing, Stats serialization
// round trips, and — the stale-result guard — result-cache hit/miss
// behaviour when a SimConfig field changes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "runner/job_spec.hpp"
#include "runner/result_cache.hpp"
#include "runner/runner.hpp"
#include "runner/version.hpp"
#include "stats/serialize.hpp"

namespace asfsim {
namespace {

using runner::JobSpec;
using runner::make_job_spec;
using runner::ResultCache;
using runner::Runner;
using runner::RunnerOptions;

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  return cfg;
}

/// Fresh per-test cache directory under the test's CWD.
class TempCacheDir {
 public:
  explicit TempCacheDir(const char* name)
      : path_(std::filesystem::path("runner_test_cache") / name) {
    std::filesystem::remove_all(path_);
  }
  ~TempCacheDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

RunnerOptions cached_opts(const TempCacheDir& dir, unsigned jobs = 2) {
  RunnerOptions o;
  o.jobs = jobs;
  o.use_cache = true;
  o.cache_dir = dir.str();
  o.manifest_path = "-";
  o.progress = RunnerOptions::Progress::kOff;
  return o;
}

// ---- JobSpec ---------------------------------------------------------------

TEST(JobSpec, IdenticalConfigsHashIdentically) {
  const auto a = make_job_spec("counter", small_config());
  const auto b = make_job_spec("counter", small_config());
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.hash_hex, b.hash_hex);
  EXPECT_EQ(a.hash_hex.size(), 16u);
}

TEST(JobSpec, EveryKnobChangesTheHash) {
  const auto base = make_job_spec("counter", small_config());
  std::vector<JobSpec> variants;
  variants.push_back(make_job_spec("bank", small_config()));
  {
    auto c = small_config();
    c.detector = DetectorKind::kSubBlock;
    variants.push_back(make_job_spec("counter", c));
  }
  {
    auto c = small_config();
    c.nsub = 8;
    variants.push_back(make_job_spec("counter", c));
  }
  {
    auto c = small_config();
    c.params.seed = 2;
    variants.push_back(make_job_spec("counter", c));
  }
  {
    auto c = small_config();
    c.params.scale = 0.250001;
    variants.push_back(make_job_spec("counter", c));
  }
  {
    auto c = small_config();
    c.sim.l1.latency += 1;  // a Table II latency
    variants.push_back(make_job_spec("counter", c));
  }
  {
    auto c = small_config();
    c.sim.enable_ats = true;
    variants.push_back(make_job_spec("counter", c));
  }
  {
    auto c = small_config();
    c.timeseries = true;
    variants.push_back(make_job_spec("counter", c));
  }
  for (const auto& v : variants) {
    EXPECT_NE(v.canonical, base.canonical);
    EXPECT_NE(v.hash_hex, base.hash_hex) << v.canonical;
  }
}

TEST(JobSpec, MirrorsRunExperimentSeedOverride) {
  // run_experiment overwrites sim.seed with params.seed; a spec differing
  // only in the (ignored) sim.seed must map to the same job.
  auto a = small_config();
  a.sim.seed = 77;
  auto b = small_config();
  b.sim.seed = 99;
  EXPECT_EQ(make_job_spec("counter", a).hash_hex,
            make_job_spec("counter", b).hash_hex);
}

// ---- Stats serialization ---------------------------------------------------

TEST(StatsSerialize, RoundTripsEveryField) {
  ExperimentConfig cfg = small_config();
  cfg.timeseries = true;  // exercise the vector fields too
  const ExperimentResult r = run_experiment("counter", cfg);
  ASSERT_TRUE(r.ok()) << r.validation_error;
  ASSERT_GT(r.stats.tx_commits, 0u);

  const std::string blob = serialize_stats(r.stats);
  Stats back;
  ASSERT_TRUE(deserialize_stats(blob, back));
  EXPECT_EQ(serialize_stats(back), blob);
  EXPECT_EQ(back.tx_commits, r.stats.tx_commits);
  EXPECT_EQ(back.conflicts_total, r.stats.conflicts_total);
  EXPECT_EQ(back.false_by_line, r.stats.false_by_line);
  EXPECT_EQ(back.tx_start_cycles, r.stats.tx_start_cycles);
}

TEST(StatsSerialize, RejectsCorruptBlobs) {
  Stats s;
  const std::string blob = serialize_stats(s);
  Stats out;
  EXPECT_TRUE(deserialize_stats(blob, out));
  EXPECT_FALSE(deserialize_stats(blob + "x", out));           // trailing junk
  EXPECT_FALSE(deserialize_stats(blob.substr(1), out));       // bad header
  EXPECT_FALSE(
      deserialize_stats(blob.substr(0, blob.size() - 4), out));  // truncated
}

// ---- Result cache ----------------------------------------------------------

TEST(ResultCache, MissThenHitRoundTripsTheResult) {
  TempCacheDir dir("roundtrip");
  ResultCache cache(dir.str());
  const JobSpec spec = make_job_spec("counter", small_config());
  EXPECT_FALSE(cache.load(spec).has_value());

  const ExperimentResult computed = run_experiment("counter", spec.config);
  cache.store(spec, computed);
  const auto loaded = cache.load(spec);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->workload, computed.workload);
  EXPECT_EQ(loaded->detector, computed.detector);
  EXPECT_EQ(loaded->validation_error, computed.validation_error);
  EXPECT_EQ(serialize_stats(loaded->stats), serialize_stats(computed.stats));
}

TEST(ResultCache, TamperedEntryIsAMissNotAWrongResult) {
  TempCacheDir dir("tamper");
  ResultCache cache(dir.str());
  const JobSpec spec = make_job_spec("counter", small_config());
  cache.store(spec, run_experiment("counter", spec.config));

  const std::string path = dir.str() + "/" +
                           std::string(runner::code_version_stamp()) + "/" +
                           spec.hash_hex + ".result";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ofstream(path, std::ios::app) << "garbage";
  EXPECT_FALSE(cache.load(spec).has_value());
}

// The satellite guard: mutating one SimConfig field must miss; re-running
// unchanged must hit without executing a simulation.
TEST(RunnerCache, ConfigMutationMissesUnchangedRerunHits) {
  TempCacheDir dir("mutation");
  const ExperimentConfig cfg = small_config();

  {
    Runner r(cached_opts(dir));
    (void)r.get("counter", cfg);
    EXPECT_EQ(r.totals().executed, 1u);
    EXPECT_EQ(r.totals().cache_hits, 0u);
  }
  {
    // One Table II latency changed: must be a miss (fresh simulation).
    ExperimentConfig mutated = cfg;
    mutated.sim.mem_latency += 1;
    Runner r(cached_opts(dir));
    (void)r.get("counter", mutated);
    EXPECT_EQ(r.totals().executed, 1u);
    EXPECT_EQ(r.totals().cache_hits, 0u);
  }
  {
    // Unchanged spec: must be a hit, zero simulations executed.
    Runner r(cached_opts(dir));
    const ExperimentResult cached = r.get("counter", cfg);
    EXPECT_EQ(r.totals().executed, 0u);
    EXPECT_EQ(r.totals().cache_hits, 1u);
    EXPECT_EQ(serialize_stats(cached.stats),
              serialize_stats(run_experiment("counter", cfg).stats));
  }
}

TEST(RunnerCache, NoCacheModeAlwaysExecutes) {
  TempCacheDir dir("nocache");
  auto opts = cached_opts(dir);
  opts.use_cache = false;
  {
    Runner r(opts);
    (void)r.get("counter", small_config());
  }
  Runner r(opts);
  (void)r.get("counter", small_config());
  EXPECT_EQ(r.totals().executed, 1u);
  EXPECT_EQ(r.totals().cache_hits, 0u);
}

TEST(Runner, DedupesIdenticalInFlightSpecs) {
  TempCacheDir dir("dedup");
  Runner r(cached_opts(dir, /*jobs=*/4));
  const ExperimentConfig cfg = small_config();
  auto f1 = r.submit("counter", cfg);
  auto f2 = r.submit("counter", cfg);
  (void)f1.get();
  (void)f2.get();
  EXPECT_EQ(r.totals().submitted, 1u);
  EXPECT_EQ(r.totals().deduped, 1u);
  EXPECT_EQ(r.totals().executed, 1u);
}

TEST(Runner, WritesMachineReadableManifest) {
  TempCacheDir dir("manifest");
  const std::string manifest = dir.str() + "/manifest.json";
  std::filesystem::create_directories(dir.str());
  {
    auto opts = cached_opts(dir);
    opts.manifest_path = manifest;
    Runner r(opts);
    (void)r.get("counter", small_config());
    (void)r.get("bank", small_config());
  }
  std::ifstream in(manifest);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"executed\": 2"), std::string::npos) << text;
  EXPECT_NE(text.find("\"workload\": \"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(text.find(runner::code_version_stamp()), std::string::npos);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(Runner, ManifestEmbedsFaultCountersWhenOptedIn) {
  TempCacheDir dir("fault_counters");
  const std::string manifest = dir.str() + "/manifest.json";
  std::filesystem::create_directories(dir.str());
  ExperimentConfig cfg = small_config();
  cfg.sim.fault.spurious_abort_rate = 0.01;  // high enough to actually fire
  cfg.sim.fault.probe_jitter = 3;
  {
    auto opts = cached_opts(dir);
    opts.manifest_path = manifest;
    opts.manifest_fault_counters = true;
    Runner r(opts);
    (void)r.get("counter", cfg);
    (void)r.get("counter", small_config());  // fault-free: no counters object
  }
  const std::string text = slurp(manifest);
  EXPECT_NE(text.find("\"fault_counters\": {"), std::string::npos) << text;
  EXPECT_NE(text.find("\"spurious_aborts\":"), std::string::npos) << text;
  EXPECT_NE(text.find("\"probe_jitter_cycles\":"), std::string::npos) << text;
  // Exactly one entry carries the object: the fault-free job omits it.
  const std::size_t first = text.find("\"fault_counters\"");
  EXPECT_EQ(text.find("\"fault_counters\"", first + 1), std::string::npos)
      << text;
}

TEST(Runner, ManifestOmitsFaultCountersByDefault) {
  TempCacheDir dir("fault_counters_off");
  const std::string manifest = dir.str() + "/manifest.json";
  std::filesystem::create_directories(dir.str());
  ExperimentConfig cfg = small_config();
  cfg.sim.fault.spurious_abort_rate = 0.01;
  {
    auto opts = cached_opts(dir);
    opts.manifest_path = manifest;  // manifest_fault_counters stays false
    Runner r(opts);
    (void)r.get("counter", cfg);
  }
  EXPECT_EQ(slurp(manifest).find("\"fault_counters\""), std::string::npos);
}

TEST(Runner, LivelockDumpLandsInManifestDiagnosticArray) {
  // Same no-forward-progress shape as asfsim_chaos livelock: the counter
  // workload's footprint overflows a tiny 1-way L1, every attempt capacity-
  // aborts, and the watchdog ends the run. The watchdog dump rides inside
  // LivelockError::what(); the manifest must split it into a one-line
  // "error" headline plus a "diagnostic" array.
  TempCacheDir dir("livelock_manifest");
  const std::string manifest = dir.str() + "/manifest.json";
  std::filesystem::create_directories(dir.str());
  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.nsub = 4;
  cfg.sim.l1.size_bytes = 256;
  cfg.sim.l1.ways = 1;
  cfg.sim.max_tx_retries = 0;  // never fall back to the lock
  cfg.sim.backoff_cap_shift = 2;
  cfg.sim.watchdog_cycles = 200'000;
  cfg.params.threads = 4;
  cfg.params.seed = 7;
  {
    auto opts = cached_opts(dir);
    opts.manifest_path = manifest;
    opts.use_cache = false;
    Runner r(opts);
    EXPECT_THROW((void)r.get("counter", cfg), runner::JobError);
  }
  const std::string text = slurp(manifest);
  EXPECT_NE(text.find("\"status\": \"failed\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"error\": \""), std::string::npos) << text;
  EXPECT_NE(text.find("livelock watchdog fired"), std::string::npos) << text;
  EXPECT_NE(text.find("\"diagnostic\": ["), std::string::npos) << text;
  // The headline "error" value itself must be single-line: no escaped
  // newline may appear anywhere (the dump was split, not embedded).
  EXPECT_EQ(text.find("\\n"), std::string::npos) << text;
  // Dump content made it into the array (per-core state + hot lines).
  EXPECT_NE(text.find("core "), std::string::npos) << text;
}

}  // namespace
}  // namespace asfsim
