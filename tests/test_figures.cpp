// Harness tests: every figure/table generator runs cleanly at reduced scale
// and produces the structurally-expected output.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "harness/figures.hpp"

namespace asfsim {
namespace {

CliOptions small() {
  CliOptions o;
  o.scale = 0.25;
  return o;
}

TEST(Figures, Table1StatesAndFig7Walkthrough) {
  std::ostringstream os;
  EXPECT_EQ(figures::table1_states(small(), os), 0);
  const std::string s = os.str();
  EXPECT_NE(s.find("Non-speculative"), std::string::npos);
  EXPECT_NE(s.find("Dirty"), std::string::npos);
  EXPECT_NE(s.find("S-RD"), std::string::npos);
  EXPECT_NE(s.find("S-WR"), std::string::npos);
}

TEST(Figures, Table2ConfigProbesMatchTableII) {
  std::ostringstream os;
  EXPECT_EQ(figures::table2_config(small(), os), 0)
      << "latency probes must match the configured Table II values\n"
      << os.str();
  EXPECT_NE(os.str().find("64KB"), std::string::npos);
}

TEST(Figures, Table3ListsAllBenchmarks) {
  std::ostringstream os;
  EXPECT_EQ(figures::table3_benchmarks(small(), os), 0);
  for (const char* b : {"intruder", "kmeans", "labyrinth", "ssca2", "vacation",
                        "genome", "scalparc", "apriori", "fluidanimate",
                        "utilitymine"}) {
    EXPECT_NE(os.str().find(b), std::string::npos) << b;
  }
}

TEST(Figures, Fig1AllWorkloadsValidate) {
  std::ostringstream os;
  EXPECT_EQ(figures::fig1_false_conflict_rate(small(), os), 0) << os.str();
  EXPECT_NE(os.str().find("average false conflict rate"), std::string::npos);
}

TEST(Figures, Fig2Breakdown) {
  std::ostringstream os;
  EXPECT_EQ(figures::fig2_conflict_type_breakdown(small(), os), 0) << os.str();
}

TEST(Figures, Fig3TimeSeries) {
  std::ostringstream os;
  EXPECT_EQ(figures::fig3_time_distribution(small(), os), 0) << os.str();
  EXPECT_NE(os.str().find("vacation"), std::string::npos);
  EXPECT_NE(os.str().find("100%"), std::string::npos);
}

TEST(Figures, Fig4LineDistribution) {
  std::ostringstream os;
  EXPECT_EQ(figures::fig4_line_distribution(small(), os), 0) << os.str();
  EXPECT_NE(os.str().find("top-5"), std::string::npos);
}

TEST(Figures, Fig5IntraLineGranularities) {
  std::ostringstream os;
  CliOptions o;
  o.scale = 0.5;
  EXPECT_EQ(figures::fig5_intra_line_access(o, os), 0) << os.str();
  // kmeans accesses 4-byte floats; the other three are 8-byte dominated.
  EXPECT_NE(os.str().find("kmeans (dominant granularity: 4 bytes)"),
            std::string::npos)
      << os.str();
}

TEST(Figures, Fig8SweepRuns) {
  std::ostringstream os;
  EXPECT_EQ(figures::fig8_subblock_sensitivity(small(), os), 0) << os.str();
  EXPECT_NE(os.str().find("paper headline: 56.4%"), std::string::npos);
}

TEST(Figures, Fig9Runs) {
  std::ostringstream os;
  EXPECT_EQ(figures::fig9_overall_conflict_reduction(small(), os), 0)
      << os.str();
}

TEST(Figures, Fig10Runs) {
  std::ostringstream os;
  EXPECT_EQ(figures::fig10_execution_time(small(), os), 0) << os.str();
}

TEST(Figures, AblationsRun) {
  std::ostringstream os;
  EXPECT_EQ(figures::ablation_waronly(small(), os), 0) << os.str();
  EXPECT_EQ(figures::ablation_waw_rule(small(), os), 0) << os.str();
  EXPECT_EQ(figures::ablation_overhead(small(), os), 0) << os.str();
  EXPECT_NE(os.str().find("0.75 KB"), std::string::npos)
      << "paper §IV-E: 4 sub-blocks on a 64KB L1 cost 0.75KB";
  EXPECT_NE(os.str().find("1.17%"), std::string::npos);
}

TEST(Figures, ExtensionAblationsRun) {
  std::ostringstream os;
  CliOptions o = small();
  EXPECT_EQ(figures::ablation_capacity(o, os), 0) << os.str();
  EXPECT_NE(os.str().find("yada"), std::string::npos);
  std::ostringstream os2;
  EXPECT_EQ(figures::ablation_ats(o, os2), 0) << os2.str();
  std::ostringstream os3;
  EXPECT_EQ(figures::ablation_cores(o, os3), 0) << os3.str();
}

TEST(Figures, CsvMirrorsAreWritten) {
  std::ostringstream os;
  CliOptions o = small();
  o.csv_dir = ::testing::TempDir();
  EXPECT_EQ(figures::fig1_false_conflict_rate(o, os), 0);
  std::ifstream in(o.csv_dir + "/fig1_false_conflict_rate.csv");
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "benchmark,conflicts,false_conflicts,false_rate");
}

}  // namespace
}  // namespace asfsim
