// Property tests for the two on-disk parsers: the stats blob
// (serialize_stats / deserialize_stats) and the JSONL trace line parser
// (from_jsonl). Mutated and truncated inputs must be rejected cleanly —
// never crash, never allocate unbounded memory, never parse into values a
// canonical re-serialization cannot reproduce. CI runs this suite under
// ASan/UBSan, which turns "cleanly" into an enforced property.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "stats/serialize.hpp"
#include "trace/jsonl.hpp"

namespace asfsim {
namespace {

/// A real stats blob with non-trivial content in every section.
std::string sample_blob() {
  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  cfg.timeseries = true;  // populate the variable-length vectors too
  const ExperimentResult r = run_experiment("counter", cfg);
  return serialize_stats(r.stats);
}

TEST(StatsFuzz, AcceptsOnlyTheExactBlobNoPrefix) {
  const std::string blob = sample_blob();
  Stats out;
  ASSERT_TRUE(deserialize_stats(blob, out));
  for (std::size_t len = 0; len < blob.size(); len += 3) {
    EXPECT_FALSE(deserialize_stats(blob.substr(0, len), out))
        << "accepted a " << len << "-byte prefix of a " << blob.size()
        << "-byte blob";
  }
}

TEST(StatsFuzz, EveryByteCorruptionIsRejectedOrCanonicallyStable) {
  const std::string blob = sample_blob();
  Stats out;
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x10, 0x80}) {
      std::string mutated = blob;
      mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
      if (mutated == blob) continue;
      if (deserialize_stats(mutated, out)) {
        // A digit-for-digit flip yields a different but well-formed blob;
        // accepting it is fine iff the parse is canonically faithful.
        EXPECT_EQ(serialize_stats(out), mutated)
            << "pos " << pos << " flip " << int{flip}
            << ": accepted a non-canonical blob";
      }
    }
  }
}

TEST(StatsFuzz, HugeCountFieldsNeverAllocate) {
  // A corrupted count must be rejected up front — not fed to reserve().
  // Build a blob whose first variable-length section claims 10^18 entries.
  const std::string blob = sample_blob();
  const std::size_t pos = blob.find("false_by_line ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t val = pos + std::string("false_by_line ").size();
  const std::size_t end = blob.find(' ', val);
  std::string mutated =
      blob.substr(0, val) + "999999999999999999" +
      blob.substr(end == std::string::npos ? blob.find('\n', val) : end);
  Stats out;
  EXPECT_FALSE(deserialize_stats(mutated, out));

  // And numbers too wide for uint64 must not wrap silently.
  std::string wide = blob;
  const std::size_t c = wide.find("tx_commits ");
  ASSERT_NE(c, std::string::npos);
  wide.insert(c + std::string("tx_commits ").size(), "184467440737095516160");
  EXPECT_FALSE(deserialize_stats(wide, out));
}

TEST(StatsFuzz, GarbageInputsAreRejected) {
  Stats out;
  EXPECT_FALSE(deserialize_stats("", out));
  EXPECT_FALSE(deserialize_stats("asfsim-stats v3", out));  // header only
  EXPECT_FALSE(deserialize_stats("asfsim-stats v1\n", out));  // old version
  EXPECT_FALSE(deserialize_stats(std::string(4096, 'x'), out));
  EXPECT_FALSE(deserialize_stats(std::string(4096, '\0'), out));
}

// ---- trace JSONL -----------------------------------------------------------

/// Real trace lines of every kind the simulator emits. The capture file is
/// named after the calling test: ctest runs each TEST as its own process,
/// and a shared name races under -j (one test's cleanup deletes the file
/// another is still reading).
std::vector<std::string> sample_lines() {
  const std::string path =
      std::string("parser_fuzz_trace_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".jsonl";
  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  TraceOptions trace;
  trace.format = TraceFormat::kJsonl;
  trace.path = path;
  (void)run_experiment("counter", cfg, trace);

  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line) && lines.size() < 200) {
    if (!line.empty()) lines.push_back(line);
  }
  std::filesystem::remove(path);
  return lines;
}

TEST(TraceFuzz, ParsesWhatItWrites) {
  const auto lines = sample_lines();
  ASSERT_GT(lines.size(), 10u);
  trace::TraceEvent ev;
  for (const std::string& line : lines) {
    ASSERT_TRUE(trace::from_jsonl(line, ev)) << line;
    std::string back;
    trace::to_jsonl(ev, back);
    EXPECT_EQ(back, line + "\n") << line;
  }
}

TEST(TraceFuzz, RejectsEveryTruncation) {
  const auto lines = sample_lines();
  ASSERT_FALSE(lines.empty());
  trace::TraceEvent ev;
  for (std::size_t li = 0; li < lines.size(); li += 7) {
    const std::string& line = lines[li];
    for (std::size_t len = 0; len < line.size(); ++len) {
      EXPECT_FALSE(trace::from_jsonl(line.substr(0, len), ev))
          << "accepted truncation of: " << line;
    }
  }
}

TEST(TraceFuzz, ByteCorruptionIsRejectedOrSemanticallyFaithful) {
  const auto lines = sample_lines();
  ASSERT_FALSE(lines.empty());
  trace::TraceEvent ev;
  for (std::size_t li = 0; li < lines.size(); li += 11) {
    const std::string& line = lines[li];
    for (std::size_t pos = 0; pos < line.size(); ++pos) {
      std::string mutated = line;
      mutated[pos] = static_cast<char>(mutated[pos] ^ 0x08);
      if (mutated == line) continue;
      if (trace::from_jsonl(mutated, ev)) {
        // Accepted input must round-trip stably: re-serializing the parsed
        // event and parsing that again yields the identical event bytes.
        std::string back;
        trace::to_jsonl(ev, back);
        trace::TraceEvent ev2;
        ASSERT_TRUE(trace::from_jsonl(back, ev2)) << mutated;
        std::string back2;
        trace::to_jsonl(ev2, back2);
        EXPECT_EQ(back, back2) << "unstable parse of: " << mutated;
      }
    }
  }
}

TEST(TraceFuzz, GarbageLinesAreRejected) {
  trace::TraceEvent ev;
  EXPECT_FALSE(trace::from_jsonl("", ev));
  EXPECT_FALSE(trace::from_jsonl("{}", ev));
  EXPECT_FALSE(trace::from_jsonl("{\"kind\":\"nope\"}", ev));
  EXPECT_FALSE(trace::from_jsonl("not json at all", ev));
  EXPECT_FALSE(trace::from_jsonl(std::string(8192, '{'), ev));
  EXPECT_FALSE(trace::from_jsonl(
      "{\"kind\":\"commit\",\"cycle\":99999999999999999999999999}", ev));
}

}  // namespace
}  // namespace asfsim
