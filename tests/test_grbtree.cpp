// Model test: GRBTree vs std::map under long random op sequences, plus
// red-black invariant checks after every batch.
#include <gtest/gtest.h>

#include <map>

#include "guest/grbtree.hpp"
#include "sim/random.hpp"

namespace asfsim {
namespace {

// Runs a scripted single-threaded guest program against a 1-core machine.
class GRBTreeModelTest : public ::testing::TestWithParam<std::uint64_t> {};

Task<void> random_ops(GuestCtx& c, GRBTree* tree, std::map<std::uint64_t, std::uint64_t>* model,
                      std::uint64_t seed, int nops, int key_range,
                      bool* mismatch) {
  Rng rng(seed);
  for (int i = 0; i < nops; ++i) {
    const std::uint64_t key = 1 + rng.below(key_range);
    const std::uint64_t op = rng.below(10);
    if (op < 4) {  // insert
      const std::uint64_t val = rng.next_u64() >> 32;
      const bool inserted = co_await tree->insert(c, key, val);
      const bool expect = model->emplace(key, val).second;
      if (inserted != expect) *mismatch = true;
    } else if (op < 7) {  // erase
      const bool erased = co_await tree->erase(c, key);
      const bool expect = model->erase(key) > 0;
      if (erased != expect) *mismatch = true;
    } else {  // find
      const std::uint64_t got = co_await tree->find(c, key, ~0ull);
      auto it = model->find(key);
      const std::uint64_t expect = it == model->end() ? ~0ull : it->second;
      if (got != expect) *mismatch = true;
    }
  }
}

TEST_P(GRBTreeModelTest, MatchesStdMapAndKeepsInvariants) {
  SimConfig cfg;
  cfg.ncores = 1;
  cfg.seed = GetParam();
  Machine m(cfg, DetectorKind::kBaseline);
  GRBTree tree = GRBTree::create(m);
  std::map<std::uint64_t, std::uint64_t> model;
  bool mismatch = false;
  m.spawn(0, random_ops(m.ctx(0), &tree, &model, GetParam() * 999 + 7, 3000,
                        64, &mismatch));
  m.run();
  EXPECT_FALSE(mismatch) << "operation result diverged from std::map";
  EXPECT_EQ(tree.host_size(m), model.size());
  EXPECT_GE(tree.host_validate(m), 0) << "red-black invariants violated";
  for (const auto& [k, v] : model) {
    EXPECT_EQ(tree.host_find(m, k, ~0ull), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GRBTreeModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GRBTreeHost, HostInsertBuildsValidTree) {
  SimConfig cfg;
  cfg.ncores = 1;
  Machine m(cfg, DetectorKind::kBaseline);
  GRBTree tree = GRBTree::create(m);
  Rng rng(42);
  std::map<std::uint64_t, std::uint64_t> model;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t k = 1 + rng.below(1000);
    const std::uint64_t v = rng.next_u64();
    tree.host_insert(m, k, v);
    model[k] = v;
  }
  EXPECT_GE(tree.host_validate(m), 0);
  EXPECT_EQ(tree.host_size(m), model.size());
  for (const auto& [k, v] : model) EXPECT_EQ(tree.host_find(m, k, 0), v);
}

}  // namespace
}  // namespace asfsim
