// Integration tests: every workload runs to completion and self-validates
// under every detector — detectors must never change results, only
// performance — and every run is deterministic.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace asfsim {
namespace {

struct Case {
  const char* workload;
  DetectorKind detector;
  std::uint32_t nsub;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n = info.param.workload;
  n += "_";
  n += to_string(info.param.detector);
  if (info.param.detector == DetectorKind::kSubBlock) {
    n += std::to_string(info.param.nsub);
  }
  for (auto& ch : n) {
    if (ch == '-') ch = '_';
  }
  return n;
}

class WorkloadMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadMatrix, RunsAndValidates) {
  const Case& c = GetParam();
  ExperimentConfig cfg;
  cfg.detector = c.detector;
  cfg.nsub = c.nsub;
  cfg.params.scale = 0.3;
  const auto r = run_experiment(c.workload, cfg);
  EXPECT_TRUE(r.ok()) << r.validation_error;
  EXPECT_GT(r.stats.tx_commits, 0u);
  EXPECT_GT(r.stats.total_cycles, 0u);
  EXPECT_EQ(r.stats.tx_attempts,
            r.stats.tx_commits + r.stats.tx_aborts - r.stats.fallback_runs)
      << "attempt accounting must balance";
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& w : workload_registry()) {
    for (const auto& [d, n] :
         {std::pair{DetectorKind::kBaseline, 1u},
          std::pair{DetectorKind::kSubBlock, 4u},
          std::pair{DetectorKind::kSubBlock, 16u},
          std::pair{DetectorKind::kSubBlockWawLine, 4u},
          std::pair{DetectorKind::kWarOnly, 1u},
          std::pair{DetectorKind::kPerfect, 1u}}) {
      cases.push_back({w.name, d, n});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloadsAllDetectors, WorkloadMatrix,
                         ::testing::ValuesIn(all_cases()), case_name);

class WorkloadDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadDeterminism, IdenticalStatsAcrossRuns) {
  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.params.scale = 0.25;
  const auto a = run_experiment(GetParam(), cfg);
  const auto b = run_experiment(GetParam(), cfg);
  EXPECT_EQ(a.stats.total_cycles, b.stats.total_cycles);
  EXPECT_EQ(a.stats.tx_attempts, b.stats.tx_attempts);
  EXPECT_EQ(a.stats.conflicts_total, b.stats.conflicts_total);
  EXPECT_EQ(a.stats.conflicts_false, b.stats.conflicts_false);
  EXPECT_EQ(a.stats.accesses, b.stats.accesses);
}

TEST_P(WorkloadDeterminism, SeedChangesTheRun) {
  ExperimentConfig cfg;
  cfg.params.scale = 0.25;
  const auto a = run_experiment(GetParam(), cfg);
  cfg.params.seed = 1234;
  const auto b = run_experiment(GetParam(), cfg);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  // At least one observable differs for contended workloads; accesses is
  // the most robust (input data itself depends on the seed).
  EXPECT_NE(a.stats.accesses, b.stats.accesses);
}

INSTANTIATE_TEST_SUITE_P(PaperBenchmarks, WorkloadDeterminism,
                         ::testing::Values("intruder", "kmeans", "labyrinth",
                                           "ssca2", "vacation", "genome",
                                           "scalparc", "apriori",
                                           "fluidanimate", "utilitymine"));

TEST(WorkloadRegistry, ListsAllRegistered) {
  EXPECT_EQ(workload_registry().size(), 16u);
  EXPECT_EQ(paper_benchmarks().size(), 10u);
  for (const auto& name : paper_benchmarks()) {
    EXPECT_NO_THROW({ (void)make_workload(name); });
  }
  EXPECT_THROW((void)make_workload("nope"), std::invalid_argument);
}

TEST(WorkloadRegistry, DescriptionsMatchTableIII) {
  EXPECT_STREQ(make_workload("intruder")->description(),
               "network intrusion detection");
  EXPECT_STREQ(make_workload("kmeans")->description(), "K-means clustering");
  EXPECT_STREQ(make_workload("labyrinth")->description(), "maze routing");
  EXPECT_STREQ(make_workload("ssca2")->description(), "graph kernels");
  EXPECT_STREQ(make_workload("vacation")->description(),
               "client/server travel reservation system");
  EXPECT_STREQ(make_workload("genome")->description(), "gene sequencing");
  EXPECT_STREQ(make_workload("scalparc")->description(),
               "decision tree classification");
  EXPECT_STREQ(make_workload("fluidanimate")->description(),
               "fluid simulation");
}

TEST(Experiment, RejectsMoreThreadsThanCores) {
  ExperimentConfig cfg;
  cfg.params.threads = 16;
  cfg.sim.ncores = 8;
  EXPECT_THROW((void)run_experiment("counter", cfg), std::invalid_argument);
}

TEST(Experiment, FewerThreadsThanCoresWorks) {
  ExperimentConfig cfg;
  cfg.params.threads = 4;
  cfg.params.scale = 0.2;
  const auto r = run_experiment("bank", cfg);
  EXPECT_TRUE(r.ok()) << r.validation_error;
}

}  // namespace
}  // namespace asfsim
