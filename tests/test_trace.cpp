// Tests for the full-timeline tracing subsystem (src/trace/): the TxTrace
// golden output, JSONL round-trips, trace↔Stats cross-checks, Perfetto
// structure, the sim-cycle log prefix, and the new Stats histograms.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "guest/machine.hpp"
#include "sim/log.hpp"
#include "stats/serialize.hpp"
#include "stats/txtrace.hpp"
#include "trace/clock.hpp"
#include "trace/jsonl.hpp"
#include "trace/perfetto_sink.hpp"
#include "trace/summary.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

// ---- TxTrace golden output --------------------------------------------------

TEST(TxTrace, ToStringCoversEveryKind) {
  EXPECT_STREQ(to_string(TxEventKind::kBegin), "begin");
  EXPECT_STREQ(to_string(TxEventKind::kCommit), "commit");
  EXPECT_STREQ(to_string(TxEventKind::kAbort), "abort");
  EXPECT_STREQ(to_string(TxEventKind::kConflict), "conflict");
  EXPECT_STREQ(to_string(TxEventKind::kFallback), "fallback");
}

TEST(TxTrace, PrintGoldenOutput) {
  TxTrace tr(8);
  tr.record({TxEventKind::kBegin, 0, kInvalidCore, 100});
  TxEvent conflict;
  conflict.kind = TxEventKind::kConflict;
  conflict.core = 0;
  conflict.other = 1;
  conflict.cycle = 150;
  conflict.type = ConflictType::kRAW;
  conflict.is_false = true;
  conflict.line = 0x1c0;
  tr.record(conflict);
  TxEvent abort;
  abort.kind = TxEventKind::kAbort;
  abort.core = 0;
  abort.cycle = 155;
  abort.cause = AbortCause::kConflict;
  tr.record(abort);
  tr.record({TxEventKind::kCommit, 1, kInvalidCore, 200});
  TxEvent fb;
  fb.kind = TxEventKind::kFallback;
  fb.core = 2;
  fb.cycle = 300;
  fb.cause = AbortCause::kCapacity;
  tr.record(fb);

  std::ostringstream os;
  tr.print(os);
  EXPECT_EQ(os.str(),
            "cycle 100  core 0  begin\n"
            "cycle 150  core 0  conflict FALSE RAW by core 1 on line 0x1c0\n"
            "cycle 155  core 0  abort (conflict)\n"
            "cycle 200  core 1  commit\n"
            "cycle 300  core 2  fallback\n");
}

// ---- JSONL round-trip -------------------------------------------------------

bool events_equal(const trace::TraceEvent& a, const trace::TraceEvent& b) {
  return a.kind == b.kind && a.core == b.core && a.other == b.other &&
         a.cycle == b.cycle && a.span_begin == b.span_begin &&
         a.cause == b.cause && a.type == b.type && a.is_false == b.is_false &&
         a.line == b.line && a.probe_mask == b.probe_mask &&
         a.victim_mask == b.victim_mask && a.retries == b.retries &&
         a.wasted == b.wasted && a.read_lines == b.read_lines &&
         a.write_lines == b.write_lines && a.read_subs == b.read_subs &&
         a.write_subs == b.write_subs && a.live_tx == b.live_tx &&
         a.commits == b.commits && a.aborts == b.aborts &&
         a.bus_wait == b.bus_wait && a.has_prov == b.has_prov &&
         a.victim_site == b.victim_site && a.victim_obj == b.victim_obj &&
         a.victim_sub == b.victim_sub && a.req_site == b.req_site &&
         a.req_obj == b.req_obj && a.loser == b.loser &&
         a.site_id == b.site_id &&
         a.site_obj_size == b.site_obj_size &&
         a.site_objects == b.site_objects && a.site_bytes == b.site_bytes &&
         a.site_name == b.site_name;
}

TEST(TraceJsonl, RoundTripsEveryKind) {
  std::vector<trace::TraceEvent> events;
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kBegin;
    ev.core = 3;
    ev.cycle = 42;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kCommit;
    ev.core = 1;
    ev.cycle = 900;
    ev.span_begin = 800;
    ev.retries = 2;
    ev.wasted = 77;
    ev.read_lines = 5;
    ev.write_lines = 2;
    ev.read_subs = 9;
    ev.write_subs = 3;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kAbort;
    ev.core = 2;
    ev.cycle = 500;
    ev.span_begin = 450;
    ev.cause = AbortCause::kCapacity;
    ev.wasted = 50;
    ev.read_lines = 1;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kConflict;
    ev.core = 0;
    ev.other = 7;
    ev.cycle = 123;
    ev.line = 0x2c0;
    ev.type = ConflictType::kWAW;
    ev.is_false = true;
    ev.probe_mask = 0xff;
    ev.victim_mask = 0xff00;
    ev.has_prov = true;
    ev.victim_site = 3;
    ev.victim_obj = 17;
    ev.victim_sub = 2;
    ev.req_site = 1;
    ev.req_obj = 4;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kAvoided;
    ev.core = 4;
    ev.other = 5;
    ev.cycle = 321;
    ev.line = 0x340;
    ev.probe_mask = 1;
    ev.victim_mask = 2;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kFallback;
    ev.core = 6;
    ev.cycle = 2000;
    ev.span_begin = 1500;
    ev.retries = 24;
    ev.wasted = 400;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kBackoff;
    ev.core = 1;
    ev.cycle = 260;
    ev.span_begin = 250;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kCounter;
    ev.cycle = 8192;
    ev.live_tx = 3;
    ev.commits = 100;
    ev.aborts = 20;
    ev.bus_wait = 999;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kSite;
    // kSite is run metadata, not a timeline point: no core/cycle keys.
    ev.site_id = 2;
    ev.site_name = "oltp.record";
    ev.site_obj_size = 24;
    ev.site_objects = 512;
    ev.site_bytes = 12288;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kPolicy;
    ev.core = 2;   // victim
    ev.other = 5;  // requester
    ev.loser = 5;  // policy ruled against the requester
    ev.cycle = 777;
    ev.line = 0x680;
    events.push_back(ev);
  }
  {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kFallbackAcquired;
    ev.core = 3;
    ev.cycle = 4200;
    ev.span_begin = 4000;
    ev.retries = 9;
    events.push_back(ev);
  }
  ASSERT_EQ(events.size(), trace::kTraceEventKinds);

  for (const auto& ev : events) {
    std::string line;
    trace::to_jsonl(ev, line);
    EXPECT_EQ(line.back(), '\n');
    trace::TraceEvent back;
    ASSERT_TRUE(trace::from_jsonl(line, back)) << line;
    EXPECT_TRUE(events_equal(ev, back)) << line;
  }
}

TEST(TraceJsonl, RejectsMalformedLines) {
  trace::TraceEvent ev;
  EXPECT_FALSE(trace::from_jsonl("", ev));
  EXPECT_FALSE(trace::from_jsonl("{}", ev));
  EXPECT_FALSE(trace::from_jsonl("{\"kind\":\"nope\"}", ev));
  EXPECT_FALSE(trace::from_jsonl("{\"core\":1}", ev));  // kind must lead
  EXPECT_FALSE(
      trace::from_jsonl("{\"kind\":\"begin\",\"bogus\":1}", ev));
  EXPECT_TRUE(trace::from_jsonl("{\"kind\":\"begin\",\"core\":1,\"cycle\":2}",
                                ev));
}

// ---- simulation-integrated checks ------------------------------------------

/// Run `workload` on a small conflict-heavy machine, optionally streaming
/// JSONL into `jsonl`.
Stats run_traced(const std::string& workload, std::ostringstream* jsonl) {
  SimConfig sim;
  sim.ncores = 4;
  Machine m(sim, DetectorKind::kBaseline);
  std::unique_ptr<trace::JsonlSink> sink;
  if (jsonl != nullptr) {
    sink = std::make_unique<trace::JsonlSink>(*jsonl);
    m.add_trace_sink(sink.get());
  }
  WorkloadParams params;
  params.threads = 4;
  params.scale = 0.25;
  auto wl = make_workload(workload);
  wl->setup(m, params);
  m.run();
  EXPECT_EQ(wl->validate(m), "");
  return m.stats();
}

TEST(TraceIntegration, SummaryFalseCountsMatchStatsFalseByLine) {
  std::ostringstream jsonl;
  const Stats stats = run_traced("counter", &jsonl);
  ASSERT_GT(stats.conflicts_total, 0u);

  std::istringstream in(jsonl.str());
  trace::TraceSummary s;
  std::string err;
  ASSERT_TRUE(trace::summarize_jsonl(in, s, err)) << err;

  // Every doomed conflict shows up exactly once in the trace, so the
  // per-line false-conflict counts must reproduce Stats::false_by_line
  // (the Fig-4 histogram) exactly.
  std::uint64_t false_total = 0;
  for (const auto& [line, counts] : s.by_line) {
    false_total += counts.false_conflicts;
    const auto it = stats.false_by_line.find(line);
    if (counts.false_conflicts == 0) continue;
    ASSERT_NE(it, stats.false_by_line.end()) << "line " << std::hex << line;
    EXPECT_EQ(counts.false_conflicts, it->second)
        << "line " << std::hex << line;
  }
  EXPECT_EQ(false_total, stats.conflicts_false);
  EXPECT_EQ(
      s.by_kind[static_cast<std::size_t>(trace::TraceEventKind::kConflict)],
      stats.conflicts_total);
  EXPECT_EQ(
      s.by_kind[static_cast<std::size_t>(trace::TraceEventKind::kCommit)] +
          s.by_kind[static_cast<std::size_t>(trace::TraceEventKind::kFallback)],
      stats.tx_commits);
  EXPECT_EQ(
      s.by_kind[static_cast<std::size_t>(trace::TraceEventKind::kAbort)],
      stats.tx_aborts);

  std::ostringstream report;
  trace::print_summary(s, report, 5);
  EXPECT_NE(report.str().find("Top conflicting lines"), std::string::npos);
  EXPECT_NE(report.str().find("Conflict matrix"), std::string::npos);
}

TEST(TraceIntegration, TracingDoesNotPerturbTheSimulation) {
  std::ostringstream jsonl;
  const Stats off = run_traced("counter", nullptr);
  const Stats on = run_traced("counter", &jsonl);
  EXPECT_EQ(off.total_cycles, on.total_cycles);
  EXPECT_EQ(serialize_stats(off), serialize_stats(on));
  EXPECT_FALSE(jsonl.str().empty());
}

TEST(TraceIntegration, JsonlStreamIsDeterministic) {
  std::ostringstream a, b;
  (void)run_traced("counter", &a);
  (void)run_traced("counter", &b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(TracePerfetto, EmitsWellFormedStructure) {
  SimConfig sim;
  sim.ncores = 4;
  Machine m(sim, DetectorKind::kBaseline);
  std::ostringstream os;
  trace::PerfettoSink sink(os);
  m.add_trace_sink(&sink);
  WorkloadParams params;
  params.threads = 4;
  params.scale = 0.25;
  auto wl = make_workload("counter");
  wl->setup(m, params);
  m.run();

  const std::string out = os.str();
  EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"core 0\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);  // tx spans
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);  // conflicts
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(out.find("\"name\":\"live_tx\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"abort_rate\""), std::string::npos);
  // Closed exactly once (Machine::run calls TraceHub::finish).
  EXPECT_EQ(out.find("\n]}\n"), out.size() - 4);
}

// ---- sim-cycle log prefix ---------------------------------------------------

Cycle fake_clock(const void* ctx) {
  return *static_cast<const Cycle*>(ctx);
}

TEST(TraceClock, LogPrefixCarriesTheSimulatedCycle) {
  EXPECT_EQ(detail::log_prefix("info"), "[asfsim info ] ");
  EXPECT_EQ(detail::log_prefix("trace"), "[asfsim trace] ");
  const Cycle cycle = 42;
  {
    const trace::ScopedSimClock clock(&fake_clock, &cycle);
    EXPECT_EQ(detail::log_prefix("info"), "[asfsim info  @42] ");
    Cycle out = 0;
    EXPECT_TRUE(trace::current_sim_cycle(out));
    EXPECT_EQ(out, 42u);
  }
  Cycle out = 0;
  EXPECT_FALSE(trace::current_sim_cycle(out));
  EXPECT_EQ(detail::log_prefix("info"), "[asfsim info ] ");
}

// ---- Stats histogram + serialization additions ------------------------------

TEST(StatsHistograms, Log2BucketSaturates) {
  EXPECT_EQ(Stats::log2_bucket(0, 16), 0u);
  EXPECT_EQ(Stats::log2_bucket(1, 16), 1u);
  EXPECT_EQ(Stats::log2_bucket(2, 16), 2u);
  EXPECT_EQ(Stats::log2_bucket(3, 16), 2u);
  EXPECT_EQ(Stats::log2_bucket(4, 16), 3u);
  EXPECT_EQ(Stats::log2_bucket(~std::uint64_t{0}, 16), 15u);
}

TEST(StatsHistograms, AttemptEndFeedsHistogramsAndWaste) {
  Stats s;
  s.on_attempt_end(/*duration=*/100, /*read_lines=*/4, /*write_lines=*/1,
                   /*aborted=*/false);
  s.on_attempt_end(/*duration=*/200, /*read_lines=*/2, /*write_lines=*/0,
                   /*aborted=*/true);
  s.on_backoff(55);
  EXPECT_EQ(s.tx_duration_hist[Stats::log2_bucket(100, 32)], 1u);
  EXPECT_EQ(s.tx_duration_hist[Stats::log2_bucket(200, 32)], 1u);
  EXPECT_EQ(s.tx_read_lines_hist[Stats::log2_bucket(4, 16)], 1u);
  EXPECT_EQ(s.tx_write_lines_hist[Stats::log2_bucket(0, 16)], 1u);
  EXPECT_EQ(s.wasted_cycles, 200u);
  EXPECT_EQ(s.backoff_cycles, 55u);

  Stats back;
  ASSERT_TRUE(deserialize_stats(serialize_stats(s), back));
  EXPECT_EQ(back.tx_duration_hist, s.tx_duration_hist);
  EXPECT_EQ(back.tx_read_lines_hist, s.tx_read_lines_hist);
  EXPECT_EQ(back.tx_write_lines_hist, s.tx_write_lines_hist);
  EXPECT_EQ(back.wasted_cycles, 200u);
  EXPECT_EQ(back.backoff_cycles, 55u);
}

TEST(StatsHistograms, RealRunPopulatesHistograms) {
  const Stats s = run_traced("counter", nullptr);
  std::uint64_t durations = 0;
  for (const auto v : s.tx_duration_hist) durations += v;
  EXPECT_EQ(durations, s.tx_commits - s.fallback_runs + s.tx_aborts);
  EXPECT_GT(s.wasted_cycles, 0u);
  EXPECT_GT(s.backoff_cycles, 0u);
}

}  // namespace
}  // namespace asfsim
