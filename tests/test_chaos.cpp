// Chaos harness: clean controls stay green (with and without legal fault
// injection) and every protocol mutation is killed by at least one oracle —
// the same gate the chaos CI job enforces via asfsim_chaos (docs/robustness.md).
#include <gtest/gtest.h>

#include "fault/chaos.hpp"

namespace asfsim {
namespace {

TEST(ChaosCell, CleanControlPassesBothOracles) {
  ChaosCell cell;  // subblock/4, seed 1, no faults, no mutation
  const ChaosCellResult r = run_chaos_cell(cell);
  EXPECT_EQ(r.verdict, ChaosVerdict::kClean) << r.detail;
  EXPECT_GT(r.commits, 0u);
}

TEST(ChaosCell, LegalFaultInjectionNeverTripsAnOracle) {
  // Spurious aborts, forced evictions, failed commits, and timing jitter are
  // all legal ASF behaviour: the retry loop must absorb them and the
  // committed history must still serialize.
  ChaosCell cell;
  cell.fault.spurious_abort_rate = 0.002;
  cell.fault.commit_abort_rate = 0.005;
  cell.fault.evict_rate = 0.001;
  cell.fault.probe_jitter = 3;
  cell.fault.sched_jitter = 2;
  const ChaosCellResult r = run_chaos_cell(cell);
  EXPECT_EQ(r.verdict, ChaosVerdict::kClean) << r.detail;
}

TEST(ChaosCell, BaselineDetectorControlIsClean) {
  ChaosCell cell;
  cell.detector = DetectorKind::kBaseline;
  cell.nsub = 1;
  const ChaosCellResult r = run_chaos_cell(cell);
  EXPECT_EQ(r.verdict, ChaosVerdict::kClean) << r.detail;
}

// Each of the three bookkeeping/liveness mutations added with the policy
// oracle must be killed by the specific oracle designed to see it (pinning
// the diagnosis, not just "some oracle fired").
TEST(ChaosCell, WrongSubblockIndexMathKilledByInvariantAuditor) {
  ChaosCell cell;  // subblock/4, seed 1
  cell.fault.mutation = ProtocolMutation::kWrongSubblockIndexMath;
  const ChaosCellResult r = run_chaos_cell(cell);
  EXPECT_EQ(r.verdict, ChaosVerdict::kInvariantViolation) << r.detail;
  EXPECT_NE(r.detail.find("sub-block bits disagree"), std::string::npos)
      << r.detail;
}

TEST(ChaosCell, StalePiggybackMaskKilledByInvariantAuditor) {
  ChaosCell cell;
  cell.fault.mutation = ProtocolMutation::kStalePiggybackMask;
  const ChaosCellResult r = run_chaos_cell(cell);
  EXPECT_EQ(r.verdict, ChaosVerdict::kInvariantViolation) << r.detail;
  EXPECT_NE(r.detail.find("piggyback lost"), std::string::npos) << r.detail;
}

TEST(ChaosCell, BackoffNeverSleepsKilledByPolicyOracle) {
  // Correctness oracles are blind to this one: the run still serializes and
  // completes. Only the backoff-progressivity policy check can see it.
  ChaosCell cell;
  cell.fault.mutation = ProtocolMutation::kBackoffNeverSleeps;
  const ChaosCellResult r = run_chaos_cell(cell);
  EXPECT_EQ(r.verdict, ChaosVerdict::kPolicyViolation) << r.detail;
  EXPECT_NE(r.detail.find("backoff never sleeps"), std::string::npos)
      << r.detail;
}

TEST(ChaosCell, BackoffPolicyOracleAcceptsRealBackoff) {
  // The same shape without the mutation must satisfy the progressivity
  // bound — i.e. the policy oracle has no false positives on this cell.
  ChaosCell cell;
  const ChaosCellResult r = run_chaos_cell(cell);
  EXPECT_EQ(r.verdict, ChaosVerdict::kClean) << r.detail;
}

TEST(Mutations, NewMutationNamesRoundTrip) {
  for (const ProtocolMutation m :
       {ProtocolMutation::kWrongSubblockIndexMath,
        ProtocolMutation::kStalePiggybackMask,
        ProtocolMutation::kBackoffNeverSleeps}) {
    ProtocolMutation parsed = ProtocolMutation::kNone;
    ASSERT_TRUE(parse_mutation(to_string(m), parsed)) << to_string(m);
    EXPECT_EQ(parsed, m);
  }
}

// The headline acceptance criterion: every --mutate variant must be caught
// by the serializability replay or the invariant auditor on at least one
// cell, while all clean controls stay green.
TEST(KillMatrix, EveryMutationIsKilled) {
  const KillMatrixReport report = run_kill_matrix(KillMatrixOptions{});
  EXPECT_TRUE(report.clean_controls_ok) << report.control_failure;
  ASSERT_EQ(report.outcomes.size(), all_mutations().size());
  for (const MutationOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.killed) << to_string(o.mutation)
                          << " survived every chaos cell";
  }
  EXPECT_TRUE(report.all_green()) << report.summary();
}

TEST(KillMatrix, SummaryNamesEveryMutation) {
  const KillMatrixReport report = run_kill_matrix(KillMatrixOptions{});
  const std::string s = report.summary();
  for (const ProtocolMutation m : all_mutations()) {
    EXPECT_NE(s.find(to_string(m)), std::string::npos) << s;
  }
  EXPECT_NE(s.find("ALL GREEN"), std::string::npos) << s;
}

}  // namespace
}  // namespace asfsim
