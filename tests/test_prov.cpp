// Conflict-provenance pipeline: site registry resolution, collector
// aggregation, the opt-in stats-blob v4 section, zero-perturbation of the
// simulation when enabled, and exact reconciliation of per-site totals
// against the aggregate conflict counters (docs/observability.md).
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "harness/experiment.hpp"
#include "mem/addr.hpp"
#include "oltp/oltp_config.hpp"
#include "prov/collector.hpp"
#include "prov/site_registry.hpp"
#include "runner/job_spec.hpp"
#include "stats/serialize.hpp"

namespace asfsim {
namespace {

// ---- site registry ----------------------------------------------------------

TEST(SiteRegistry, RegisterDedupesAndSanitizes) {
  prov::SiteRegistry reg;
  ASSERT_EQ(reg.sites().size(), 1u);  // slot 0 is always "(untagged)"
  EXPECT_EQ(reg.sites()[prov::kUntaggedSite].name, "(untagged)");

  const prov::SiteId a = reg.register_site("oltp.record", 24);
  EXPECT_NE(a, prov::kUntaggedSite);
  EXPECT_EQ(reg.register_site("oltp.record", 24), a);
  // First obj_size wins on re-registration.
  EXPECT_EQ(reg.register_site("oltp.record", 999), a);
  EXPECT_EQ(reg.sites()[a].obj_size, 24u);

  // Names are clamped to the blob/JSONL-safe charset; "" gets a placeholder.
  const prov::SiteId weird = reg.register_site("my site #1", 8);
  EXPECT_EQ(reg.sites()[weird].name, "my_site__1");
  EXPECT_EQ(reg.register_site("my_site__1", 8), weird);  // post-sanitize alias
  const prov::SiteId unnamed = reg.register_site("", 8);
  EXPECT_EQ(reg.sites()[unnamed].name, "(unnamed)");
}

TEST(SiteRegistry, ResolvesAddressesToSiteAndObjectIndex) {
  prov::SiteRegistry reg;
  const prov::SiteId rec = reg.register_site("rec", 24);
  reg.on_alloc(1000, 72, rec);  // objects 0..2 at [1000, 1072)

  EXPECT_EQ(reg.resolve(1000).site, rec);
  EXPECT_EQ(reg.resolve(1000).object, 0u);
  EXPECT_EQ(reg.resolve(1024).object, 1u);
  EXPECT_EQ(reg.resolve(1071).object, 2u);
  EXPECT_EQ(reg.resolve(999).site, prov::kUntaggedSite);
  EXPECT_EQ(reg.resolve(1072).site, prov::kUntaggedSite);
  EXPECT_EQ(reg.sites()[rec].objects, 3u);
  EXPECT_EQ(reg.sites()[rec].bytes, 72u);

  // A later extent at a LOWER address (per-core arenas interleave) must
  // still resolve: the registry re-sorts lazily, and object indexing
  // continues in allocation order, not address order.
  reg.on_alloc(500, 48, rec);  // objects 3..4 at [500, 548)
  EXPECT_EQ(reg.resolve(524).site, rec);
  EXPECT_EQ(reg.resolve(524).object, 4u);
  EXPECT_EQ(reg.resolve(1024).object, 1u);
  EXPECT_EQ(reg.sites()[rec].objects, 5u);
}

// ---- collector --------------------------------------------------------------

TEST(ProvCollector, AggregatesBySiteLineAndPair) {
  prov::SiteRegistry reg;
  const prov::SiteId a = reg.register_site("a", 8);
  const prov::SiteId b = reg.register_site("b", 8);
  reg.on_alloc(0, 64, a);    // line 0: objects a0..a7
  reg.on_alloc(64, 64, b);   // line 64: objects b0..b7

  prov::ProvCollector col(reg, 4);  // 4 sub-blocks of 16 bytes

  // False WAR inside line 0: probe bytes [8,16) vs victim bytes [0,8) —
  // disjoint objects of site a sharing one sub-block.
  ConflictRecord f;
  f.line = 0;
  f.probe_bytes = byte_mask(8, 8);
  f.victim_bytes = byte_mask(0, 8);
  f.invalidating = true;
  f.is_false = true;
  f.type = ConflictType::kWAR;
  const auto at = col.on_conflict(f, 100);
  EXPECT_EQ(at.victim_site, a);
  EXPECT_EQ(at.victim_obj, 0u);
  EXPECT_EQ(at.victim_sub, 0u);
  EXPECT_EQ(at.req_site, a);
  EXPECT_EQ(at.req_obj, 1u);

  // True WAW on line 64: overlapping bytes [48,56) → victim named by the
  // overlap, sub-block 3.
  ConflictRecord t;
  t.line = 64;
  t.probe_bytes = byte_mask(48, 8);
  t.victim_bytes = byte_mask(48, 8);
  t.invalidating = true;
  t.is_false = false;
  t.type = ConflictType::kWAW;
  const auto at2 = col.on_conflict(t, 40);
  EXPECT_EQ(at2.victim_site, b);
  EXPECT_EQ(at2.victim_obj, 6u);
  EXPECT_EQ(at2.victim_sub, 3u);

  // Avoided credit on line 0 against site a.
  col.on_avoided(0, byte_mask(32, 8), byte_mask(0, 8));

  Stats s;
  col.flush(s);
  ASSERT_TRUE(s.prov_enabled);
  ASSERT_EQ(s.prov_site_names.size(), 3u);  // (untagged), a, b
  ASSERT_EQ(s.prov_site_table.size(), 3 * prov::kSiteStride);

  const auto* ra = &s.prov_site_table[a * prov::kSiteStride];
  EXPECT_EQ(ra[0], 8u);    // obj_size
  EXPECT_EQ(ra[1], 8u);    // objects
  EXPECT_EQ(ra[2], 64u);   // bytes
  EXPECT_EQ(ra[3], 1u);    // false WAR
  EXPECT_EQ(ra[6], 0u);    // true WAR
  EXPECT_EQ(ra[9], 1u);    // avoided
  EXPECT_EQ(ra[10], 100u); // wasted

  const auto* rb = &s.prov_site_table[b * prov::kSiteStride];
  EXPECT_EQ(rb[5 /* false WAW */], 0u);
  EXPECT_EQ(rb[8 /* true WAW */], 1u);
  EXPECT_EQ(rb[10], 40u);

  ASSERT_EQ(s.prov_hot_lines.size(), 2 * prov::kLineStride);
  // Equal totals (1 each): ascending line breaks the tie.
  EXPECT_EQ(s.prov_hot_lines[0], 0u);   // line
  EXPECT_EQ(s.prov_hot_lines[1], a);    // victim site
  EXPECT_EQ(s.prov_hot_lines[2], 1u);   // false
  EXPECT_EQ(s.prov_hot_lines[4], 64u);
  EXPECT_EQ(s.prov_hot_lines[7], 1u);   // true

  ASSERT_EQ(s.prov_pairs.size(), 2 * prov::kPairStride);
  EXPECT_EQ(s.prov_pairs[0], a);  // requester
  EXPECT_EQ(s.prov_pairs[1], a);  // victim
  EXPECT_EQ(s.prov_pairs[2], 1u);
}

// ---- stats blob v4 ----------------------------------------------------------

TEST(ProvStatsBlob, DisabledBlobKeepsV3HeaderAndNoProvSection) {
  Stats s;
  s.tx_commits = 7;
  const std::string blob = serialize_stats(s);
  EXPECT_EQ(blob.rfind("asfsim-stats v3", 0), 0u);
  EXPECT_EQ(blob.find("prov"), std::string::npos);
  Stats back;
  ASSERT_TRUE(deserialize_stats(blob, back));
  EXPECT_FALSE(back.prov_enabled);
}

TEST(ProvStatsBlob, V4SectionRoundTrips) {
  Stats s;
  s.prov_enabled = true;
  s.prov_site_names = {"(untagged)", "oltp.record"};
  s.prov_site_table.assign(2 * prov::kSiteStride, 0);
  s.prov_site_table[prov::kSiteStride + 3] = 42;  // record false WARs
  s.prov_hot_lines = {4096, 1, 42, 0};
  s.prov_pairs = {1, 1, 42, 0};

  const std::string blob = serialize_stats(s);
  EXPECT_EQ(blob.rfind("asfsim-stats v4", 0), 0u);
  Stats back;
  ASSERT_TRUE(deserialize_stats(blob, back));
  EXPECT_TRUE(back.prov_enabled);
  EXPECT_EQ(back.prov_site_names, s.prov_site_names);
  EXPECT_EQ(back.prov_site_table, s.prov_site_table);
  EXPECT_EQ(back.prov_hot_lines, s.prov_hot_lines);
  EXPECT_EQ(back.prov_pairs, s.prov_pairs);

  // Truncating the section must fail loudly, not yield a half-read blob.
  Stats junk;
  EXPECT_FALSE(deserialize_stats(blob.substr(0, blob.size() - 4), junk));
}

// ---- end-to-end: provenance on a contended OLTP run -------------------------

ExperimentResult contended_oltp(DetectorKind det, std::uint32_t nsub,
                                bool provenance) {
  ExperimentConfig cfg;
  cfg.detector = det;
  cfg.nsub = nsub;
  cfg.params.scale = 0.25;
  cfg.params.oltp.theta = 1.2;
  cfg.params.oltp.read_ratio = 0.5;
  cfg.sim.provenance = provenance;
  return run_experiment("oltp", cfg);
}

TEST(ProvRun, EnablingProvenanceDoesNotPerturbTheSimulation) {
  const auto off = contended_oltp(DetectorKind::kSubBlock, 4, false);
  auto on = contended_oltp(DetectorKind::kSubBlock, 4, true);
  ASSERT_TRUE(off.ok()) << off.validation_error;
  ASSERT_TRUE(on.ok()) << on.validation_error;
  EXPECT_TRUE(on.stats.prov_enabled);
  EXPECT_GT(on.stats.prov_site_table.size(), 0u);

  // Strip the opt-in section; everything else must be byte-identical.
  on.stats.prov_enabled = false;
  on.stats.prov_site_names.clear();
  on.stats.prov_site_table.clear();
  on.stats.prov_hot_lines.clear();
  on.stats.prov_pairs.clear();
  EXPECT_EQ(serialize_stats(off.stats), serialize_stats(on.stats));
}

TEST(ProvRun, PerSiteTotalsReconcileExactlyWithAggregateCounters) {
  const auto r = contended_oltp(DetectorKind::kSubBlock, 4, true);
  ASSERT_TRUE(r.ok()) << r.validation_error;
  const Stats& s = r.stats;
  ASSERT_TRUE(s.prov_enabled);
  ASSERT_EQ(s.prov_site_table.size(),
            s.prov_site_names.size() * prov::kSiteStride);
  ASSERT_GT(s.conflicts_total, 0u);

  std::uint64_t nfalse = 0, ntrue = 0, avoided = 0;
  std::array<std::uint64_t, 3> false_by_type{}, true_by_type{};
  for (std::size_t i = 0; i < s.prov_site_names.size(); ++i) {
    const auto* row = &s.prov_site_table[i * prov::kSiteStride];
    for (int t = 0; t < 3; ++t) {
      nfalse += row[3 + t];
      ntrue += row[6 + t];
      false_by_type[t] += row[3 + t];
      true_by_type[t] += row[6 + t];
    }
    avoided += row[9];
  }
  EXPECT_EQ(nfalse, s.conflicts_false);
  EXPECT_EQ(nfalse + ntrue, s.conflicts_total);
  EXPECT_EQ(avoided, s.false_conflicts_avoided);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(false_by_type[t], s.false_by_type[t]) << "type " << t;
    EXPECT_EQ(true_by_type[t], s.true_by_type[t]) << "type " << t;
  }

  // The pair matrix is complete (unlike hot lines, which are top-32).
  std::uint64_t pair_false = 0, pair_true = 0;
  for (std::size_t i = 0; i < s.prov_pairs.size(); i += prov::kPairStride) {
    pair_false += s.prov_pairs[i + 2];
    pair_true += s.prov_pairs[i + 3];
  }
  EXPECT_EQ(pair_false, s.conflicts_false);
  EXPECT_EQ(pair_false + pair_true, s.conflicts_total);
}

TEST(ProvRun, RecordTableIsTheTopFalseConflictSiteUnderBaseline) {
  const auto r = contended_oltp(DetectorKind::kBaseline, 1, true);
  ASSERT_TRUE(r.ok()) << r.validation_error;
  const Stats& s = r.stats;
  ASSERT_GT(s.conflicts_false, 0u);

  std::size_t top = 0;
  std::uint64_t top_false = 0;
  for (std::size_t i = 0; i < s.prov_site_names.size(); ++i) {
    const auto* row = &s.prov_site_table[i * prov::kSiteStride];
    const std::uint64_t f = row[3] + row[4] + row[5];
    if (f > top_false) {
      top_false = f;
      top = i;
    }
  }
  // The unpadded record table manufactures the false sharing; the report
  // must name it, not the allocator or a control structure.
  EXPECT_EQ(s.prov_site_names[top], "oltp.record");
  EXPECT_GT(top_false, 0u);
}

// ---- jobspec identity -------------------------------------------------------

TEST(ProvJobSpec, ProvenanceAndHotWindowParticipateInTheHash) {
  ExperimentConfig base;
  const std::string h0 = runner::make_job_spec("oltp", base).hash_hex;

  ExperimentConfig p = base;
  p.sim.provenance = true;
  const std::string h1 = runner::make_job_spec("oltp", p).hash_hex;

  ExperimentConfig w = base;
  w.params.oltp.hot_window = 64;
  const std::string h2 = runner::make_job_spec("oltp", w).hash_hex;

  EXPECT_NE(h0, h1);
  EXPECT_NE(h0, h2);
  EXPECT_NE(h1, h2);
}

// ---- YCSB-D sliding hot window ----------------------------------------------

TEST(OltpHotWindow, ValidatedAndDeterministic) {
  OltpConfig c;
  c.hot_window = c.records;
  EXPECT_TRUE(c.validate().empty());
  c.hot_window = c.records + 1;
  EXPECT_FALSE(c.validate().empty());

  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.nsub = 4;
  cfg.params.scale = 0.2;
  cfg.params.oltp.mix = OltpMix::kD;
  cfg.params.oltp.hot_window = 64;
  const auto a = run_experiment("oltp", cfg);
  const auto b = run_experiment("oltp", cfg);
  ASSERT_TRUE(a.ok()) << a.validation_error;
  EXPECT_GT(a.stats.tx_commits, 0u);
  EXPECT_EQ(serialize_stats(a.stats), serialize_stats(b.stats));

  // The window changes which keys collide, so it must change the outcome —
  // otherwise the knob silently fell out of the key-draw path.
  ExperimentConfig whole = cfg;
  whole.params.oltp.hot_window = 0;
  const auto c2 = run_experiment("oltp", whole);
  ASSERT_TRUE(c2.ok()) << c2.validation_error;
  EXPECT_NE(serialize_stats(a.stats), serialize_stats(c2.stats));
}

}  // namespace
}  // namespace asfsim
