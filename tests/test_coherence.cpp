// Unit tests: MemorySystem — MOESI transitions, latencies per data source,
// speculative metadata, capacity aborts, retention, dirty marks.
//
// Uses a scripted ITxControl so individual coherence decisions can be
// asserted without the full HTM runtime.
#include <gtest/gtest.h>

#include <vector>

#include "core/detector.hpp"
#include "mem/coherence.hpp"
#include "sim/kernel.hpp"

namespace asfsim {
namespace {

class FakeTxControl final : public ITxControl {
 public:
  std::vector<bool> active;
  std::vector<ConflictRecord> dooms;
  MemorySystem* mem = nullptr;

  explicit FakeTxControl(std::uint32_t ncores) : active(ncores, false) {}

  bool in_tx(CoreId core) const override { return active[core]; }
  void doom(CoreId victim, const ConflictRecord& rec) override {
    dooms.push_back(rec);
    active[victim] = false;
    if (mem != nullptr) mem->clear_spec(victim, true);
  }
};

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest()
      : cfg_(no_bus()), kernel_(cfg_.ncores), stats_(),
        mem_(kernel_, cfg_, stats_), tx_(cfg_.ncores) {
    detector_ = make_detector(DetectorKind::kSubBlock, 4);
    mem_.set_detector(detector_.get());
    mem_.set_tx_control(&tx_);
    tx_.mem = &mem_;
  }

  static SimConfig no_bus() {
    // Unit tests assert pure source latencies; all accesses happen at the
    // same kernel cycle, so bus queuing (tested separately below) would
    // otherwise stack up.
    SimConfig c;
    c.bus_occupancy = 0;
    return c;
  }

  AccessResult access(CoreId c, Addr a, std::uint32_t size, bool write) {
    return mem_.access(c, a, size, write, tx_.active[c]);
  }

  SimConfig cfg_;
  Kernel kernel_;
  Stats stats_;
  MemorySystem mem_;
  FakeTxControl tx_;
  std::unique_ptr<ConflictDetector> detector_;
  static constexpr Addr kA = 0x10000;
};

TEST_F(CoherenceTest, ColdLoadComesFromMemoryThenL1) {
  auto r = access(0, kA, 8, false);
  EXPECT_EQ(r.source, DataSource::kMemory);
  EXPECT_EQ(r.latency, cfg_.mem_latency);
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kExclusive);
  r = access(0, kA, 8, false);
  EXPECT_EQ(r.source, DataSource::kL1);
  EXPECT_EQ(r.latency, cfg_.l1.latency);
}

TEST_F(CoherenceTest, RemoteCopyServedCacheToCacheAndShared) {
  access(0, kA, 8, false);  // core0: E
  const auto r = access(1, kA, 8, false);
  EXPECT_EQ(r.source, DataSource::kRemoteL1);
  EXPECT_EQ(r.latency, cfg_.cache2cache_latency);
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kShared);  // E -> S on share
  EXPECT_EQ(mem_.l1_state(1, kA), Moesi::kShared);
}

TEST_F(CoherenceTest, ModifiedOwnerSuppliesAndBecomesOwned) {
  access(0, kA, 8, true);  // core0: M
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kModified);
  access(1, kA, 8, false);
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kOwned);
  EXPECT_EQ(mem_.l1_state(1, kA), Moesi::kShared);
}

TEST_F(CoherenceTest, WriteInvalidatesAllOtherCopies) {
  access(0, kA, 8, false);
  access(1, kA, 8, false);
  access(2, kA, 8, false);
  access(3, kA, 8, true);  // RFO
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kInvalid);
  EXPECT_EQ(mem_.l1_state(1, kA), Moesi::kInvalid);
  EXPECT_EQ(mem_.l1_state(2, kA), Moesi::kInvalid);
  EXPECT_EQ(mem_.l1_state(3, kA), Moesi::kModified);
}

TEST_F(CoherenceTest, SharedWriteUpgradesInPlace) {
  access(0, kA, 8, false);
  access(1, kA, 8, false);  // both S
  const auto r = access(0, kA, 8, true);
  EXPECT_EQ(r.latency, cfg_.upgrade_latency);
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kModified);
  EXPECT_EQ(mem_.l1_state(1, kA), Moesi::kInvalid);
}

TEST_F(CoherenceTest, EvictedLineHitsPrivateL2) {
  // Fill both ways of kA's set, then one more line to evict kA.
  const Addr conflict1 = kA + 512 * kLineBytes;   // same set (512 sets)
  const Addr conflict2 = kA + 1024 * kLineBytes;  // same set
  access(0, kA, 8, false);
  access(0, conflict1, 8, false);
  access(0, conflict2, 8, false);  // evicts LRU = kA
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kInvalid);
  const auto r = access(0, kA, 8, false);
  EXPECT_EQ(r.source, DataSource::kL2);
  EXPECT_EQ(r.latency, cfg_.l2.latency);
}

TEST_F(CoherenceTest, SpeculativeAccessRecordsMetadataAndTableIBits) {
  tx_.active[0] = true;
  access(0, kA + 4, 4, false);
  access(0, kA + 32, 8, true);
  const SpecState* s = mem_.spec_state(0, kA);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->read_bytes, byte_mask(4, 4));
  EXPECT_EQ(s->write_bytes, byte_mask(32, 8));
  EXPECT_EQ(mem_.subblock_state(0, kA, 0), SubBlockState::kSpecRead);
  EXPECT_EQ(mem_.subblock_state(0, kA, 2), SubBlockState::kSpecWrite);
  EXPECT_EQ(mem_.subblock_state(0, kA, 3), SubBlockState::kNonSpec);
}

TEST_F(CoherenceTest, ReadOfSpecWrittenSubBlockDoomsWriter) {
  tx_.active[0] = true;
  access(0, kA, 8, true);
  access(1, kA, 8, false);  // same sub-block -> RAW, writer doomed
  ASSERT_EQ(tx_.dooms.size(), 1u);
  EXPECT_EQ(tx_.dooms[0].victim, 0u);
  EXPECT_EQ(tx_.dooms[0].type, ConflictType::kRAW);
  EXPECT_FALSE(tx_.dooms[0].is_false);
  EXPECT_EQ(mem_.spec_state(0, kA), nullptr) << "doom clears metadata";
}

TEST_F(CoherenceTest, ReadOfOtherSubBlockSetsDirtyMarkInstead) {
  tx_.active[0] = true;
  access(0, kA, 8, true);       // sub-block 0 S-WR
  access(1, kA + 32, 8, false);  // different sub-block
  EXPECT_TRUE(tx_.dooms.empty());
  EXPECT_EQ(mem_.dirty_marks(1, kA), 0b0001u)
      << "piggy-back marks the writer's sub-block Dirty at the reader";
  EXPECT_EQ(mem_.subblock_state(1, kA, 0), SubBlockState::kDirty);
  EXPECT_EQ(stats_.piggyback_messages, 1u);
}

TEST_F(CoherenceTest, DirtyHitForcesReprobeWhichDoomsWriter) {
  tx_.active[0] = true;
  tx_.active[1] = true;
  access(0, kA, 8, true);
  access(1, kA + 32, 8, false);  // dirty mark on sub-block 0
  access(1, kA, 8, false);       // touches the Dirty sub-block
  ASSERT_EQ(tx_.dooms.size(), 1u);
  EXPECT_EQ(tx_.dooms[0].victim, 0u);
  EXPECT_EQ(stats_.dirty_refetches, 1u);
  EXPECT_EQ(mem_.dirty_marks(1, kA), 0u) << "refetch clears the marks";
}

TEST_F(CoherenceTest, FalseWarInvalidatesWithRetentionAndStillDetectsLater) {
  tx_.active[0] = true;
  access(0, kA, 8, false);       // core0 spec-reads sub-block 0
  access(1, kA + 32, 8, true);   // false WAR: invalidate w/ retention
  EXPECT_TRUE(tx_.dooms.empty());
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kInvalid);
  ASSERT_NE(mem_.spec_state(0, kA), nullptr) << "read set retained";
  access(2, kA, 8, true);  // true WAR against the retained read set
  ASSERT_EQ(tx_.dooms.size(), 1u);
  EXPECT_EQ(tx_.dooms[0].victim, 0u);
  EXPECT_EQ(tx_.dooms[0].type, ConflictType::kWAR);
  EXPECT_FALSE(tx_.dooms[0].is_false);
}

TEST_F(CoherenceTest, CapacityAbortWhenEveryWayIsSpeculative) {
  tx_.active[0] = true;
  const Addr s1 = kA + 512 * kLineBytes, s2 = kA + 1024 * kLineBytes;
  EXPECT_FALSE(access(0, kA, 8, false).capacity_abort);
  EXPECT_FALSE(access(0, s1, 8, false).capacity_abort);
  EXPECT_TRUE(access(0, s2, 8, false).capacity_abort)
      << "third speculative line in a 2-way set cannot be kept";
}

TEST_F(CoherenceTest, ClearSpecOnAbortDropsWrittenLinesOnly) {
  tx_.active[0] = true;
  access(0, kA, 8, false);                    // spec read line
  access(0, kA + kLineBytes, 8, true);        // spec written line
  mem_.clear_spec(0, /*discard_written_lines=*/true);
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kExclusive) << "clean line survives";
  EXPECT_EQ(mem_.l1_state(0, kA + kLineBytes), Moesi::kInvalid);
  EXPECT_EQ(mem_.spec_lines(0), 0u);
}

TEST_F(CoherenceTest, ClearSpecOnCommitKeepsWrittenLines) {
  tx_.active[0] = true;
  access(0, kA, 8, true);
  mem_.clear_spec(0, /*discard_written_lines=*/false);
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kModified);
}

TEST_F(CoherenceTest, CommitValidationDoomsOverlappingReaders) {
  tx_.active[1] = true;
  access(1, kA, 8, false);  // core1 spec-reads bytes 0..7
  mem_.validate_readers_at_commit(0, kA, byte_mask(0, 4));
  ASSERT_EQ(tx_.dooms.size(), 1u);
  EXPECT_EQ(tx_.dooms[0].victim, 1u);
  tx_.dooms.clear();
  tx_.active[2] = true;
  access(2, kA + 32, 8, false);
  mem_.validate_readers_at_commit(0, kA, byte_mask(0, 4));
  EXPECT_TRUE(tx_.dooms.empty()) << "disjoint bytes never validate-fail";
}

TEST_F(CoherenceTest, NonTxAccessesNeverCreateMetadata) {
  access(0, kA, 8, true);
  EXPECT_EQ(mem_.spec_state(0, kA), nullptr);
  EXPECT_EQ(stats_.tx_accesses, 0u);
  EXPECT_EQ(stats_.accesses, 1u);
}

TEST_F(CoherenceTest, AvoidedFalseConflictsAreCounted) {
  tx_.active[0] = true;
  access(0, kA, 8, false);
  access(1, kA + 32, 8, true);  // baseline would abort; sub-block does not
  EXPECT_EQ(stats_.false_conflicts_avoided, 1u);
  EXPECT_EQ(stats_.conflicts_total, 0u);
}

TEST_F(CoherenceTest, DoublyEvictedLineHitsPrivateL3) {
  // Evict from the 2-way L1 (32KB set stride) AND the 16-way L2 (same
  // stride): after 17 same-set fills the first line is gone from both and
  // must be served by the private L3.
  for (std::uint64_t k = 0; k < 18; ++k) {
    access(0, kA + k * 512 * kLineBytes, 8, false);
  }
  EXPECT_EQ(mem_.l1_state(0, kA), Moesi::kInvalid);
  const auto r = access(0, kA, 8, false);
  EXPECT_EQ(r.source, DataSource::kL3);
  EXPECT_EQ(r.latency, cfg_.l3.latency);
  EXPECT_GE(stats_.l3_hits, 1u);
}

TEST_F(CoherenceTest, ByteGranularAccessesConflictOnlyWithinSubBlocks) {
  // Two transactions touching DIFFERENT BYTES of the same 4-byte word: the
  // 4-sub-block detector (16-byte blocks) must still signal (same block),
  // which the classifier marks FALSE (no byte overlap).
  tx_.active[0] = true;
  access(0, kA + 0, 1, true);   // core0 writes byte 0
  access(1, kA + 1, 1, false);  // core1 reads byte 1 (same sub-block)
  ASSERT_EQ(tx_.dooms.size(), 1u);
  EXPECT_TRUE(tx_.dooms[0].is_false)
      << "disjoint bytes in one sub-block: detected but FALSE";
  EXPECT_EQ(tx_.dooms[0].type, ConflictType::kRAW);
}

TEST_F(CoherenceTest, TwoByteAccessesRecordExactMasks) {
  tx_.active[2] = true;
  access(2, kA + 6, 2, false);
  access(2, kA + 8, 2, true);
  const SpecState* s = mem_.spec_state(2, kA);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->read_bytes, byte_mask(6, 2));
  EXPECT_EQ(s->write_bytes, byte_mask(8, 2));
}

TEST(BusContention, BackToBackProbesQueue) {
  SimConfig cfg;  // default bus_occupancy = 4
  Kernel kernel(cfg.ncores);
  Stats stats;
  MemorySystem mem(kernel, cfg, stats);
  FakeTxControl tx(cfg.ncores);
  auto det = make_detector(DetectorKind::kBaseline);
  mem.set_detector(det.get());
  mem.set_tx_control(&tx);
  tx.mem = &mem;

  // Three cold loads of distinct lines at the same kernel cycle: each holds
  // the snoop bus for bus_occupancy cycles, so the k-th waits k*occupancy.
  const AccessResult r0 = mem.access(0, 0x10000, 8, false, false);
  const AccessResult r1 = mem.access(1, 0x20000, 8, false, false);
  const AccessResult r2 = mem.access(2, 0x30000, 8, false, false);
  EXPECT_EQ(r0.latency, cfg.mem_latency);
  EXPECT_EQ(r1.latency, cfg.mem_latency + cfg.bus_occupancy);
  EXPECT_EQ(r2.latency, cfg.mem_latency + 2 * cfg.bus_occupancy);
  EXPECT_EQ(stats.bus_wait_cycles, 3 * cfg.bus_occupancy);
  EXPECT_EQ(mem.bus_busy_until(), 3 * cfg.bus_occupancy);
}

TEST(BusContention, LocalHitsNeverTouchTheBus) {
  SimConfig cfg;
  Kernel kernel(cfg.ncores);
  Stats stats;
  MemorySystem mem(kernel, cfg, stats);
  FakeTxControl tx(cfg.ncores);
  auto det = make_detector(DetectorKind::kBaseline);
  mem.set_detector(det.get());
  mem.set_tx_control(&tx);
  tx.mem = &mem;

  mem.access(0, 0x10000, 8, false, false);
  const Cycle busy = mem.bus_busy_until();
  const AccessResult hit = mem.access(0, 0x10000, 8, false, false);
  EXPECT_EQ(hit.latency, cfg.l1.latency);
  EXPECT_EQ(mem.bus_busy_until(), busy) << "hits must not occupy the bus";
}

}  // namespace
}  // namespace asfsim
