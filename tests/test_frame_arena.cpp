// Unit tests: FrameArena slab/freelist allocator and its wiring into Task<>
// coroutine frames (docs/performance.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/frame_arena.hpp"
#include "sim/task.hpp"

namespace asfsim {
namespace {

TEST(FrameArena, BlocksAreGranularityAligned) {
  std::vector<std::pair<void*, std::size_t>> blocks;
  for (std::size_t n : {1ul, 17ul, 64ul, 65ul, 640ul, 4096ul}) {
    void* p = FrameArena::allocate(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % FrameArena::kGranularity,
              0u)
        << "size " << n;
    std::memset(p, 0xab, n);  // must be writable end to end
    blocks.emplace_back(p, n);
  }
  for (auto [p, n] : blocks) FrameArena::deallocate(p, n);
}

TEST(FrameArena, FreedBlockIsReusedForSameBucket) {
  void* a = FrameArena::allocate(100);
  FrameArena::deallocate(a, 100);
  const auto before = FrameArena::telemetry();
  // 100 and 128 round to the same 64-byte bucket, so the freelist must
  // hand back the exact block we just returned.
  void* b = FrameArena::allocate(128);
  const auto after = FrameArena::telemetry();
  EXPECT_EQ(b, a);
  EXPECT_EQ(after.bucket_reuses, before.bucket_reuses + 1);
  FrameArena::deallocate(b, 128);
}

TEST(FrameArena, DistinctLiveBlocksDoNotOverlap) {
  constexpr std::size_t kN = 300;  // forces at least one extra slab
  std::vector<char*> blocks;
  for (std::size_t i = 0; i < kN; ++i) {
    auto* p = static_cast<char*>(FrameArena::allocate(320));
    std::memset(p, static_cast<int>(i & 0xff), 320);
    blocks.push_back(p);
  }
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(blocks[i][0], static_cast<char>(i & 0xff)) << i;
    EXPECT_EQ(blocks[i][319], static_cast<char>(i & 0xff)) << i;
  }
  for (char* p : blocks) FrameArena::deallocate(p, 320);
}

TEST(FrameArena, OversizeFallsBackToGlobalAllocator) {
  const auto before = FrameArena::telemetry();
  void* p = FrameArena::allocate(FrameArena::kMaxBucketed + 1);
  const auto after = FrameArena::telemetry();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(after.fallback_allocs, before.fallback_allocs + 1);
  EXPECT_EQ(after.bucket_allocs, before.bucket_allocs);
  FrameArena::deallocate(p, FrameArena::kMaxBucketed + 1);
}

Task<int> leaf(int v) { co_return v; }

Task<int> chain(int depth) {
  if (depth == 0) {
    const int v = co_await leaf(1);
    co_return v;
  }
  const int v = co_await chain(depth - 1);
  co_return v + 1;
}

Task<void> driver(int* out) {
  const int v = co_await chain(8);
  *out = v;
  co_return;
}

TEST(FrameArena, CoroutineFramesComeFromTheArenaAndRecycle) {
  // Warm-up run carves whatever slabs/buckets the frame shapes need...
  int out = 0;
  {
    Task<void> t = driver(&out);
    t.raw_handle().resume();
    ASSERT_TRUE(t.done());
    t.rethrow_if_error();
  }
  EXPECT_EQ(out, 9);

  // ...after which an identical call chain must be served entirely from
  // freelists: frames hit the arena (bucket_allocs grows) and every one of
  // them is a reuse (no new slabs, reuses grow in lockstep).
  const auto before = FrameArena::telemetry();
  {
    Task<void> t = driver(&out);
    t.raw_handle().resume();
    ASSERT_TRUE(t.done());
    t.rethrow_if_error();
  }
  const auto after = FrameArena::telemetry();
  EXPECT_EQ(out, 9);
  const std::uint64_t allocs = after.bucket_allocs - before.bucket_allocs;
  EXPECT_GE(allocs, 10u);  // driver + chain(8..0) + leaf
  EXPECT_EQ(after.bucket_reuses - before.bucket_reuses, allocs);
  EXPECT_EQ(after.slabs, before.slabs);
  EXPECT_EQ(after.fallback_allocs, before.fallback_allocs);
}

}  // namespace
}  // namespace asfsim
