// Unit + integration tests for the ATS extension (adaptive transaction
// scheduling, DESIGN.md extension; bench/ablation_ats).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "htm/scheduler.hpp"

namespace asfsim {
namespace {

TEST(AdaptiveScheduler, ContentionEmaTracksOutcomes) {
  AdaptiveScheduler s(2, 0.5, 0.5);
  EXPECT_FALSE(s.should_serialize(0));
  s.on_tx_end(0, true);   // CI = 0.5
  EXPECT_FALSE(s.should_serialize(0)) << "threshold is strict";
  s.on_tx_end(0, true);   // CI = 0.75
  EXPECT_TRUE(s.should_serialize(0));
  s.on_tx_end(0, false);  // CI = 0.375
  EXPECT_FALSE(s.should_serialize(0));
  EXPECT_FALSE(s.should_serialize(1)) << "per-core state";
}

TEST(AdaptiveScheduler, SlotIsExclusiveAndReentrant) {
  AdaptiveScheduler s(3, 0.3, 0.5);
  EXPECT_TRUE(s.try_acquire(0));
  EXPECT_TRUE(s.try_acquire(0)) << "holder may re-acquire";
  EXPECT_FALSE(s.try_acquire(1));
  s.release(2);  // non-holder release is a no-op
  EXPECT_FALSE(s.try_acquire(1));
  s.release(0);
  EXPECT_TRUE(s.try_acquire(1));
}

TEST(AdaptiveScheduler, DisabledByDefault) {
  ExperimentConfig cfg;
  cfg.params.scale = 0.2;
  const auto r = run_experiment("counter", cfg);
  EXPECT_EQ(r.stats.ats_serialized, 0u);
}

TEST(AdaptiveScheduler, EngagesUnderContentionAndPreservesResults) {
  ExperimentConfig on;
  on.detector = DetectorKind::kBaseline;
  on.sim.enable_ats = true;
  on.sim.ats_threshold = 0.3;
  on.params.scale = 0.5;
  const auto r = run_experiment("counter", on);
  EXPECT_TRUE(r.ok()) << r.validation_error;
  EXPECT_GT(r.stats.ats_serialized, 0u)
      << "the contended counter workload must trip the scheduler";
}

TEST(AdaptiveScheduler, SerializationReducesConflictsOnHotWorkloads) {
  ExperimentConfig off;
  off.detector = DetectorKind::kBaseline;
  off.params.scale = 0.5;
  ExperimentConfig on = off;
  on.sim.enable_ats = true;
  on.sim.ats_threshold = 0.3;
  const auto base = run_experiment("counter", off);
  const auto ats = run_experiment("counter", on);
  EXPECT_TRUE(ats.ok()) << ats.validation_error;
  EXPECT_LT(ats.stats.conflicts_total, base.stats.conflicts_total)
      << "serializing storming cores must cut conflicts";
}

TEST(AdaptiveScheduler, ComposesWithSubBlocking) {
  for (const char* w : {"bank", "ssca2"}) {
    ExperimentConfig cfg;
    cfg.detector = DetectorKind::kSubBlock;
    cfg.sim.enable_ats = true;
    cfg.sim.ats_threshold = 0.4;
    cfg.params.scale = 0.3;
    const auto r = run_experiment(w, cfg);
    EXPECT_TRUE(r.ok()) << w << ": " << r.validation_error;
  }
}

}  // namespace
}  // namespace asfsim
