// Unit tests: conflict-detection policies (Table I state machine, probe
// checks at every granularity, classifier ground truth).
#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/line_detector.hpp"
#include "core/perfect_detector.hpp"
#include "core/subblock_detector.hpp"
#include "core/subblock_state.hpp"
#include "core/waronly_detector.hpp"

namespace asfsim {
namespace {

SpecState read_state(ByteMask bytes, std::uint32_t nsub) {
  SpecState s;
  s.read_bytes = bytes;
  s.bits.spec = quantize(bytes, nsub);
  return s;
}

SpecState write_state(ByteMask bytes, std::uint32_t nsub) {
  SpecState s;
  s.write_bytes = bytes;
  s.bits.spec = quantize(bytes, nsub);
  s.bits.wr = quantize(bytes, nsub);
  return s;
}

// ---- Table I encoding -------------------------------------------------------

TEST(SubBlockState, TableIEncoding) {
  EXPECT_EQ(make_state(false, false), SubBlockState::kNonSpec);
  EXPECT_EQ(make_state(false, true), SubBlockState::kDirty);
  EXPECT_EQ(make_state(true, false), SubBlockState::kSpecRead);
  EXPECT_EQ(make_state(true, true), SubBlockState::kSpecWrite);
  for (const auto s : {SubBlockState::kNonSpec, SubBlockState::kDirty,
                       SubBlockState::kSpecRead, SubBlockState::kSpecWrite}) {
    EXPECT_EQ(make_state(spec_bit(s), wr_bit(s)), s);
  }
}

TEST(SubBlockState, PackedBitsRoundTrip) {
  SubBlockBits b;
  b.set(0, SubBlockState::kSpecRead);
  b.set(1, SubBlockState::kSpecWrite);
  b.set(3, SubBlockState::kDirty);
  EXPECT_EQ(b.state(0), SubBlockState::kSpecRead);
  EXPECT_EQ(b.state(1), SubBlockState::kSpecWrite);
  EXPECT_EQ(b.state(2), SubBlockState::kNonSpec);
  EXPECT_EQ(b.state(3), SubBlockState::kDirty);
  EXPECT_EQ(b.speculative(), 0b0011u);
  EXPECT_EQ(b.spec_written(), 0b0010u);
  EXPECT_EQ(b.spec_read_only(), 0b0001u);
  EXPECT_EQ(b.dirty(), 0b1000u);
}

TEST(SubBlockState, SetOverwritesPreviousState) {
  SubBlockBits b;
  b.set(2, SubBlockState::kSpecWrite);
  b.set(2, SubBlockState::kSpecRead);
  EXPECT_EQ(b.state(2), SubBlockState::kSpecRead);
  b.set(2, SubBlockState::kNonSpec);
  EXPECT_EQ(b.state(2), SubBlockState::kNonSpec);
}

// ---- baseline (per-line SR/SW) ----------------------------------------------

TEST(LineDetector, InvalidatingProbeConflictsWithAnySpecState) {
  LineDetector d;
  EXPECT_TRUE(d.check_probe(read_state(byte_mask(0, 8), 1), byte_mask(32, 8),
                            true).conflict);
  EXPECT_TRUE(d.check_probe(write_state(byte_mask(0, 8), 1), byte_mask(32, 8),
                            true).conflict);
  EXPECT_FALSE(d.check_probe(SpecState{}, byte_mask(0, 8), true).conflict);
}

TEST(LineDetector, LoadProbeConflictsOnlyWithSpecWrites) {
  LineDetector d;
  EXPECT_FALSE(d.check_probe(read_state(byte_mask(0, 8), 1), byte_mask(0, 8),
                             false).conflict);
  EXPECT_TRUE(d.check_probe(write_state(byte_mask(0, 8), 1), byte_mask(32, 8),
                            false).conflict);
}

// ---- speculative sub-blocking -----------------------------------------------

class SubBlockDetectorTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  [[nodiscard]] std::uint32_t nsub() const { return GetParam(); }
  [[nodiscard]] std::uint32_t sub_bytes() const { return 64 / nsub(); }
};

TEST_P(SubBlockDetectorTest, LoadVsRemoteWriteSameSubBlockConflicts) {
  SubBlockDetector d(nsub());
  const auto victim = write_state(byte_mask(0, 4), nsub());
  EXPECT_TRUE(d.check_probe(victim, byte_mask(0, 4), false).conflict);
}

TEST_P(SubBlockDetectorTest, LoadVsRemoteWriteOtherSubBlockPiggybacks) {
  SubBlockDetector d(nsub());
  const auto victim = write_state(byte_mask(0, 4), nsub());
  const ByteMask probe = byte_mask(64 - 4, 4);  // last sub-block
  const ProbeCheck pc = d.check_probe(victim, probe, false);
  EXPECT_FALSE(pc.conflict);
  EXPECT_EQ(pc.piggyback, victim.bits.spec_written())
      << "the response must carry the S-WR sub-block mask";
}

TEST_P(SubBlockDetectorTest, StoreVsRemoteReadOtherSubBlockRetains) {
  SubBlockDetector d(nsub());
  const auto victim = read_state(byte_mask(0, 4), nsub());
  const ProbeCheck pc = d.check_probe(victim, byte_mask(64 - 4, 4), true);
  EXPECT_FALSE(pc.conflict);
  EXPECT_TRUE(pc.retain_spec_info)
      << "false WAR must keep speculative info in the invalidated line";
}

TEST_P(SubBlockDetectorTest, StoreVsRemoteReadSameSubBlockConflicts) {
  SubBlockDetector d(nsub());
  const auto victim = read_state(byte_mask(0, 4), nsub());
  EXPECT_TRUE(d.check_probe(victim, byte_mask(0, 4), true).conflict);
}

TEST_P(SubBlockDetectorTest, DirtyHitTriggersOnlyOnMarkedSubBlocks) {
  SubBlockDetector d(nsub());
  const SubBlockMask dirty0 = 1;  // sub-block 0 dirty
  EXPECT_TRUE(d.dirty_hit(dirty0, byte_mask(0, 4)));
  EXPECT_FALSE(d.dirty_hit(dirty0, byte_mask(64 - 4, 4)));
  EXPECT_FALSE(d.dirty_hit(0, byte_mask(0, 4)));
}

TEST_P(SubBlockDetectorTest, NoDirtyVariantNeverPiggybacksOrForcesMisses) {
  SubBlockDetector d(nsub(), /*dirty_handling=*/false);
  const auto victim = write_state(byte_mask(0, 4), nsub());
  const ProbeCheck pc = d.check_probe(victim, byte_mask(64 - 4, 4), false);
  EXPECT_FALSE(pc.conflict);
  EXPECT_EQ(pc.piggyback, 0u);
  EXPECT_FALSE(d.dirty_hit(0xffff, byte_mask(0, 8)));
}

TEST_P(SubBlockDetectorTest, WawDefaultIsSubBlockGranular) {
  SubBlockDetector d(nsub());
  const auto victim = write_state(byte_mask(0, 4), nsub());
  const ProbeCheck pc = d.check_probe(victim, byte_mask(64 - 4, 4), true);
  EXPECT_FALSE(pc.conflict);
  EXPECT_TRUE(pc.retain_spec_info);
  EXPECT_TRUE(d.check_probe(victim, byte_mask(0, 4), true).conflict);
}

TEST_P(SubBlockDetectorTest, WawLineVariantAbortsOnAnySpecWrite) {
  SubBlockDetector d(nsub(), true, /*waw_line=*/true);
  const auto victim = write_state(byte_mask(0, 4), nsub());
  EXPECT_TRUE(d.check_probe(victim, byte_mask(64 - 4, 4), true).conflict)
      << "paper §IV-D2: losing a speculatively-written line must abort";
}

INSTANTIATE_TEST_SUITE_P(Granularities, SubBlockDetectorTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(SubBlockDetector, RejectsBadSubBlockCounts) {
  EXPECT_THROW(SubBlockDetector(0), std::invalid_argument);
  EXPECT_THROW(SubBlockDetector(1), std::invalid_argument);
  EXPECT_THROW(SubBlockDetector(3), std::invalid_argument);
  EXPECT_THROW(SubBlockDetector(32), std::invalid_argument);
}

TEST(SubBlockDetector, CoarserGranularityConflictsMore) {
  // Adjacent 4-byte words: conflict at 2/4/8 sub-blocks, not at 16.
  const ByteMask a = byte_mask(16, 4), b = byte_mask(20, 4);
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    SubBlockDetector d(n);
    EXPECT_TRUE(d.check_probe(write_state(a, n), b, false).conflict) << n;
  }
  SubBlockDetector d16(16);
  EXPECT_FALSE(d16.check_probe(write_state(a, 16), b, false).conflict);
}

// ---- perfect & WAR-only ------------------------------------------------------

TEST(PerfectDetector, NeverSignalsOnProbes) {
  PerfectDetector d;
  EXPECT_TRUE(d.global_oracle());
  EXPECT_FALSE(d.check_probe(write_state(byte_mask(0, 8), 1), byte_mask(0, 8),
                             true).conflict);
}

TEST(WarOnlyDetector, FalseWarIsSpeculatedAway) {
  WarOnlyDetector d;
  const auto victim = read_state(byte_mask(0, 8), 1);
  const ProbeCheck pc = d.check_probe(victim, byte_mask(32, 8), true);
  EXPECT_FALSE(pc.conflict);
  EXPECT_TRUE(pc.retain_spec_info);
}

TEST(WarOnlyDetector, TrueWarStillAborts) {
  WarOnlyDetector d;
  const auto victim = read_state(byte_mask(0, 8), 1);
  EXPECT_TRUE(d.check_probe(victim, byte_mask(0, 4), true).conflict);
}

TEST(WarOnlyDetector, RawAndWawStayLineGranular) {
  WarOnlyDetector d;
  const auto victim = write_state(byte_mask(0, 8), 1);
  EXPECT_TRUE(d.check_probe(victim, byte_mask(32, 8), false).conflict)
      << "false RAW is NOT handled by WAR-only schemes (paper §II)";
  EXPECT_TRUE(d.check_probe(victim, byte_mask(32, 8), true).conflict);
}

// ---- classifier ----------------------------------------------------------------

TEST(Classifier, TypeAndTruthMatrix) {
  SpecState rd = read_state(byte_mask(0, 8), 4);
  SpecState wr = write_state(byte_mask(0, 8), 4);

  auto c = classify_conflict(rd, byte_mask(0, 4), true);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kWAR);

  c = classify_conflict(rd, byte_mask(32, 4), true);
  EXPECT_TRUE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kWAR);

  c = classify_conflict(wr, byte_mask(0, 4), false);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kRAW);

  c = classify_conflict(wr, byte_mask(32, 4), false);
  EXPECT_TRUE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kRAW);

  c = classify_conflict(wr, byte_mask(0, 4), true);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kWAW);

  c = classify_conflict(wr, byte_mask(32, 4), true);
  EXPECT_TRUE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kWAW);
}

TEST(Classifier, BaselineWouldConflictMatchesLineDetector) {
  LineDetector line;
  for (const bool victim_writes : {false, true}) {
    for (const bool invalidating : {false, true}) {
      const SpecState s = victim_writes ? write_state(byte_mask(0, 8), 1)
                                        : read_state(byte_mask(0, 8), 1);
      EXPECT_EQ(baseline_would_conflict(s, invalidating),
                line.check_probe(s, byte_mask(32, 8), invalidating).conflict);
    }
  }
}

TEST(Classifier, MixedReadWriteVictimPrefersWawOnOverlap) {
  SpecState s;
  s.read_bytes = byte_mask(0, 8);
  s.write_bytes = byte_mask(8, 8);
  auto c = classify_conflict(s, byte_mask(8, 4), true);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kWAW);
  c = classify_conflict(s, byte_mask(0, 4), true);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kWAR);
}

TEST(Classifier, EmptyProbeMaskNeverTrueConflicts) {
  // A degenerate probe touching no bytes cannot overlap anything: always
  // classified false, for any victim state and probe polarity.
  for (const bool invalidating : {false, true}) {
    for (const SpecState& s :
         {read_state(byte_mask(0, 64), 1), write_state(byte_mask(0, 64), 1),
          SpecState{}}) {
      EXPECT_FALSE(true_conflict(s, 0, invalidating));
      EXPECT_TRUE(classify_conflict(s, 0, invalidating).is_false);
    }
  }
}

TEST(Classifier, FullLineProbeTrueAgainstAnyNonEmptyState) {
  const ByteMask full = byte_mask(0, 64);
  auto c = classify_conflict(read_state(byte_mask(60, 4), 16), full, true);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kWAR);
  c = classify_conflict(write_state(byte_mask(0, 1), 64), full, true);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kWAW);
  c = classify_conflict(write_state(byte_mask(63, 1), 64), full, false);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kRAW);
  // ... but a full-line load against a read-only victim is still false:
  // loads only conflict with speculatively-written data.
  c = classify_conflict(read_state(full, 1), full, false);
  EXPECT_TRUE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kRAW);
}

TEST(Classifier, NonInvalidatingReadAgainstWriteOnlyState) {
  // Write-only victim: a remote load is RAW — true exactly on byte overlap.
  const SpecState wr = write_state(byte_mask(16, 8), 8);
  auto c = classify_conflict(wr, byte_mask(16, 8), false);
  EXPECT_FALSE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kRAW);
  c = classify_conflict(wr, byte_mask(24, 8), false);  // adjacent, disjoint
  EXPECT_TRUE(c.is_false);
  EXPECT_EQ(c.type, ConflictType::kRAW);
  // One-byte overlap at the boundary is enough to be true.
  c = classify_conflict(wr, byte_mask(23, 8), false);
  EXPECT_FALSE(c.is_false);
}

TEST(Classifier, IsFalseAgreesWithTrueConflictOverRandomMasks) {
  // classify_conflict().is_false must be the exact negation of
  // true_conflict() for any (victim, probe, polarity) — the two entry
  // points share the overlap rule and must never drift apart.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int i = 0; i < 2000; ++i) {
    SpecState s;
    s.read_bytes = static_cast<ByteMask>(next());
    s.write_bytes = static_cast<ByteMask>(next());
    const ByteMask probe = static_cast<ByteMask>(next());
    const bool invalidating = (next() & 1) != 0;
    const Classification c = classify_conflict(s, probe, invalidating);
    EXPECT_EQ(c.is_false, !true_conflict(s, probe, invalidating))
        << "rd=" << s.read_bytes << " wr=" << s.write_bytes
        << " probe=" << probe << " inv=" << invalidating;
  }
}

TEST(DetectorFactory, ProducesEveryKind) {
  for (const auto kind :
       {DetectorKind::kBaseline, DetectorKind::kSubBlock,
        DetectorKind::kSubBlockWawLine, DetectorKind::kSubBlockNoDirty,
        DetectorKind::kPerfect, DetectorKind::kWarOnly}) {
    const auto d = make_detector(kind, 4);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->kind(), kind);
  }
}

}  // namespace
}  // namespace asfsim
