// Unit tests: GRing, GuestBarrier, Stats hooks, TextTable/CsvWriter, CLI
// parsing, logging.
#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>

#include "guest/barrier.hpp"
#include "guest/glist.hpp"
#include "guest/machine.hpp"
#include "harness/args.hpp"
#include "sim/log.hpp"
#include "stats/report.hpp"
#include "stats/txtrace.hpp"

namespace asfsim {
namespace {

SimConfig cores(std::uint32_t n) {
  SimConfig c;
  c.ncores = n;
  return c;
}

// ---- GRing ------------------------------------------------------------------

Task<void> ring_ops(GuestCtx& c, GRing* ring, std::deque<std::uint64_t>* model,
                    std::uint64_t seed, int nops, bool* mismatch) {
  Rng rng(seed);
  for (int i = 0; i < nops; ++i) {
    if (rng.chance(0.55)) {
      const std::uint64_t v = 1 + rng.below(1000);
      co_await ring->push(c, v);
      model->push_back(v);
    } else {
      const std::uint64_t v = co_await ring->pop(c);
      if (model->empty()) {
        if (v != 0) *mismatch = true;
      } else {
        if (v != model->front()) *mismatch = true;
        model->pop_front();
      }
    }
  }
}

class GRingModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GRingModel, FifoMatchesStdDeque) {
  Machine m(cores(1), DetectorKind::kBaseline);
  GRing ring = GRing::create(m, 2048);
  std::deque<std::uint64_t> model;
  bool mismatch = false;
  m.spawn(0, ring_ops(m.ctx(0), &ring, &model, GetParam() * 5 + 1, 1500,
                      &mismatch));
  m.run();
  EXPECT_FALSE(mismatch);
  EXPECT_EQ(ring.host_size(m), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GRingModel, ::testing::Values(1, 2, 3));

TEST(GRing, HostPushInteroperatesWithGuestPop) {
  Machine m(cores(1), DetectorKind::kBaseline);
  GRing ring = GRing::create(m, 64);
  for (std::uint64_t v = 1; v <= 10; ++v) ring.host_push(m, v * 7);
  bool ok = true;
  auto drain = [](GuestCtx& c, GRing* r, bool* ok_out) -> Task<void> {
    for (std::uint64_t v = 1; v <= 10; ++v) {
      const std::uint64_t got = co_await r->pop(c);
      if (got != v * 7) *ok_out = false;
    }
    const std::uint64_t empty = co_await r->pop(c);
    if (empty != 0) *ok_out = false;
  };
  m.spawn(0, drain(m.ctx(0), &ring, &ok));
  m.run();
  EXPECT_TRUE(ok);
}

TEST(GRing, WrapsAroundItsCapacity) {
  Machine m(cores(1), DetectorKind::kBaseline);
  GRing ring = GRing::create(m, 8);
  bool ok = true;
  auto churn = [](GuestCtx& c, GRing* r, bool* ok_out) -> Task<void> {
    for (std::uint64_t round = 1; round <= 40; ++round) {
      co_await r->push(c, round);
      const std::uint64_t got = co_await r->pop(c);
      if (got != round) *ok_out = false;
    }
  };
  m.spawn(0, churn(m.ctx(0), &ring, &ok));
  m.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(ring.host_size(m), 0u);
}

// ---- GuestBarrier -------------------------------------------------------------

Task<void> barrier_worker(GuestCtx& c, GuestBarrier* bar, Cycle jitter,
                          int* arrived, std::vector<int>* seen_at_release) {
  co_await c.wait(jitter);
  ++*arrived;
  co_await bar->arrive_and_wait(c);
  // Everyone observes the FULL arrival count after release — nobody got
  // through early.
  seen_at_release->push_back(*arrived);
}

TEST(GuestBarrier, NobodyPassesBeforeTheLastArrival) {
  Machine m(cores(4), DetectorKind::kBaseline);
  GuestBarrier bar(m.kernel(), 4);
  int arrived = 0;
  std::vector<int> seen;
  for (CoreId c = 0; c < 4; ++c) {
    m.spawn(c, barrier_worker(m.ctx(c), &bar, 137 * c + 1, &arrived, &seen));
  }
  m.run();
  ASSERT_EQ(seen.size(), 4u);
  for (const int v : seen) EXPECT_EQ(v, 4);
}

TEST(GuestBarrier, IsReusableAcrossPhases) {
  Machine m(cores(3), DetectorKind::kBaseline);
  GuestBarrier bar(m.kernel(), 3);
  int phase_errors = 0;
  int phase = 0;
  auto worker = [](GuestCtx& c, GuestBarrier* b, int* ph, int* errs,
                   bool leader) -> Task<void> {
    for (int p = 0; p < 5; ++p) {
      co_await b->arrive_and_wait(c);
      if (leader) ++*ph;
      co_await b->arrive_and_wait(c);
      if (*ph != p + 1) ++*errs;
      co_await c.wait(50 + 13 * c.core());
    }
  };
  for (CoreId c = 0; c < 3; ++c) {
    m.spawn(c, worker(m.ctx(c), &bar, &phase, &phase_errors, c == 0));
  }
  m.run();
  EXPECT_EQ(phase_errors, 0);
  EXPECT_EQ(phase, 5);
}

TEST(GuestBarrier, UnreachedBarrierIsDetectedAsDeadlock) {
  Machine m(cores(2), DetectorKind::kBaseline);
  GuestBarrier bar(m.kernel(), 3);  // one party will never come
  auto arrive = [](GuestCtx& c, GuestBarrier* b) -> Task<void> {
    co_await b->arrive_and_wait(c);
  };
  m.spawn(0, arrive(m.ctx(0), &bar));
  m.spawn(1, arrive(m.ctx(1), &bar));
  EXPECT_THROW(m.run(), DeadlockError);
}

// ---- Stats hooks -----------------------------------------------------------

TEST(Stats, ConflictHookClassifiesAndBins) {
  Stats s;
  s.record_timeseries = true;
  ConflictRecord rec;
  rec.line = 0x1000;
  rec.cycle = 42;
  rec.is_false = true;
  rec.type = ConflictType::kRAW;
  rec.probe_bytes = byte_mask(0, 4);
  rec.victim_bytes = byte_mask(4, 4);  // adjacent word: survives 2..8, not 16
  s.on_conflict(rec);
  EXPECT_EQ(s.conflicts_total, 1u);
  EXPECT_EQ(s.conflicts_false, 1u);
  EXPECT_EQ(s.false_by_type[1], 1u);
  EXPECT_EQ(s.false_by_line[0x1000], 1u);
  EXPECT_EQ(s.false_conflict_cycles.size(), 1u);
  EXPECT_EQ(s.false_surviving_at[0], 1u);  // 1 sub-block
  EXPECT_EQ(s.false_surviving_at[3], 1u);  // 8 sub-blocks: same 8B block
  EXPECT_EQ(s.false_surviving_at[4], 0u);  // 16 sub-blocks: separated
}

TEST(Stats, DerivedRates) {
  Stats s;
  EXPECT_EQ(s.false_conflict_rate(), 0.0);
  EXPECT_EQ(s.avg_retries(), 0.0);
  s.conflicts_total = 10;
  s.conflicts_false = 4;
  s.tx_attempts = 30;
  s.tx_commits = 20;
  EXPECT_DOUBLE_EQ(s.false_conflict_rate(), 0.4);
  EXPECT_DOUBLE_EQ(s.avg_retries(), 0.5);
}

// ---- report helpers -----------------------------------------------------------

TEST(TextTable, AlignsColumnsAndFormats) {
  TextTable t({"a", "long-header"});
  t.add_row({"xxxxxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxxxx"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(TextTable::pct(0.1234), "12.3%");
  EXPECT_EQ(TextTable::num(1.5, 1), "1.5");
}

TEST(CsvWriter, InactiveWithoutDirActiveWithIt) {
  CsvWriter off("", "x");
  EXPECT_FALSE(off.active());
  off.row({"never", "written"});  // must be a safe no-op

  const std::string dir = ::testing::TempDir();
  CsvWriter on(dir, "misc_test");
  EXPECT_TRUE(on.active());
  on.row({"h1", "h2"});
  on.row({"1", "2"});
}

// ---- CLI parsing ----------------------------------------------------------------

TEST(Cli, ParsesAllFlags) {
  const char* argv[] = {"prog",      "--scale", "2.5",  "--threads", "4",
                        "--seed",    "99",      "--csv", "/tmp/x"};
  const CliOptions o = parse_cli(9, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(o.scale, 2.5);
  EXPECT_EQ(o.threads, 4u);
  EXPECT_EQ(o.seed, 99u);
  EXPECT_EQ(o.csv_dir, "/tmp/x");
}

TEST(Cli, DefaultsApply) {
  const char* argv[] = {"prog"};
  const CliOptions o = parse_cli(1, const_cast<char**>(argv), 0.5);
  EXPECT_DOUBLE_EQ(o.scale, 0.5);
  EXPECT_EQ(o.threads, 8u);
  EXPECT_EQ(o.seed, 1u);
  EXPECT_TRUE(o.csv_dir.empty());
}

// ---- TxTrace ----------------------------------------------------------------

TEST(TxTrace, RingKeepsTheMostRecentEvents) {
  TxTrace tr(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    tr.record({TxEventKind::kBegin, i, kInvalidCore, Cycle{i} * 10,
               AbortCause::kConflict, ConflictType::kWAR, false, 0});
  }
  EXPECT_EQ(tr.total_recorded(), 10u);
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().core, 6u);
  EXPECT_EQ(evs.back().core, 9u);
  EXPECT_EQ(evs.back().cycle, 90u);
}

TEST(TxTrace, MachineIntegrationRecordsLifecycle) {
  SimConfig cfg;
  cfg.ncores = 2;
  Machine m(cfg, DetectorKind::kBaseline);
  TxTrace& tr = m.enable_trace(256);
  const Addr cell = m.galloc().alloc(64, 64);
  auto worker = [](GuestCtx& c, Addr a) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await c.run_tx([&]() -> Task<void> {
        const std::uint64_t v = co_await c.load_u64(a);
        co_await c.store_u64(a, v + 1);
      });
    }
  };
  m.spawn(0, worker(m.ctx(0), cell));
  m.spawn(1, worker(m.ctx(1), cell));
  m.run();
  int begins = 0, commits = 0, aborts = 0, conflicts = 0;
  for (const auto& ev : tr.events()) {
    switch (ev.kind) {
      case TxEventKind::kBegin: ++begins; break;
      case TxEventKind::kCommit: ++commits; break;
      case TxEventKind::kAbort: ++aborts; break;
      case TxEventKind::kConflict: ++conflicts; break;
      default: break;
    }
  }
  EXPECT_EQ(commits, 10);
  EXPECT_EQ(begins, commits + aborts);
  EXPECT_EQ(aborts, conflicts) << "every abort here is conflict-caused";
  std::ostringstream os;
  tr.print(os);
  EXPECT_NE(os.str().find("commit"), std::string::npos);
}

TEST(TxTrace, DisabledTraceHasNoEffect) {
  SimConfig cfg;
  cfg.ncores = 1;
  Machine m(cfg, DetectorKind::kBaseline);
  EXPECT_EQ(m.trace(), nullptr);
}

// ---- logging ----------------------------------------------------------------

TEST(Log, LevelGateWorks) {
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
  ASFSIM_INFO("info message %d", 1);    // exercised, goes to stderr
  ASFSIM_TRACE("trace message %d", 2);
  set_log_level(LogLevel::kOff);
}

}  // namespace
}  // namespace asfsim
