// Unit tests: AsfRuntime — overlay versioning, commit/abort, dooming,
// backoff, fallback accounting.
#include <gtest/gtest.h>

#include "guest/machine.hpp"
#include "htm/backoff.hpp"

namespace asfsim {
namespace {

class HtmTest : public ::testing::Test {
 protected:
  HtmTest() : m_(make_cfg(), DetectorKind::kSubBlock, 4) {
    a_ = m_.galloc().alloc_lines(1);
    m_.poke(a_, 8, 100);
    m_.poke(a_ + 8, 8, 200);
  }
  static SimConfig make_cfg() {
    SimConfig c;
    c.ncores = 2;
    return c;
  }
  Machine m_;
  Addr a_ = 0;
};

TEST_F(HtmTest, SpeculativeWritesAreBufferedUntilCommit) {
  AsfRuntime& rt = m_.runtime();
  rt.begin(0);
  rt.write_value(0, a_, 8, 111);
  EXPECT_EQ(m_.peek(a_, 8), 100u) << "committed memory unchanged";
  EXPECT_EQ(rt.read_value(0, a_, 8), 111u) << "own overlay wins";
  EXPECT_EQ(rt.read_value(1, a_, 8), 100u) << "other cores see old data";
  rt.commit(0);
  EXPECT_EQ(m_.peek(a_, 8), 111u);
  EXPECT_EQ(rt.overlay_lines(0), 0u);
}

TEST_F(HtmTest, AbortDiscardsTheOverlay) {
  AsfRuntime& rt = m_.runtime();
  rt.begin(0);
  rt.write_value(0, a_, 8, 111);
  rt.self_doom(0, AbortCause::kUser);
  EXPECT_TRUE(rt.doomed(0));
  EXPECT_EQ(rt.finish_abort(0), 1u);
  EXPECT_EQ(m_.peek(a_, 8), 100u);
  EXPECT_FALSE(rt.active(0));
  EXPECT_EQ(m_.stats().aborts_by_cause[static_cast<int>(AbortCause::kUser)],
            1u);
}

TEST_F(HtmTest, OverlayMergesPartialBytes) {
  AsfRuntime& rt = m_.runtime();
  rt.begin(0);
  rt.write_value(0, a_ + 2, 2, 0xBEEF);
  // Reading 8 bytes: committed value 100 with bytes 2..3 overlaid.
  const std::uint64_t expect = (100ull & ~0xffff0000ull) | (0xBEEFull << 16);
  EXPECT_EQ(rt.read_value(0, a_, 8), expect);
  rt.commit(0);
  EXPECT_EQ(m_.peek(a_, 8), expect);
}

TEST_F(HtmTest, DoomViaConflictRecordsCauseAndClearsSpec) {
  AsfRuntime& rt = m_.runtime();
  rt.begin(0);
  m_.mem().access(0, a_, 8, true, true);
  rt.write_value(0, a_, 8, 5);
  ConflictRecord rec;
  rec.victim = 0;
  rt.doom(0, rec);
  EXPECT_TRUE(rt.doomed(0));
  EXPECT_EQ(rt.doom_cause(0), AbortCause::kConflict);
  EXPECT_EQ(m_.mem().spec_state(0, line_of(a_)), nullptr);
  EXPECT_FALSE(rt.in_tx(0)) << "doomed transactions stop conflicting";
  rt.finish_abort(0);
}

TEST_F(HtmTest, RetriesAccumulateAndResetOnCommit) {
  AsfRuntime& rt = m_.runtime();
  for (int i = 1; i <= 3; ++i) {
    rt.begin(0);
    rt.self_doom(0, AbortCause::kUser);
    EXPECT_EQ(rt.finish_abort(0), static_cast<std::uint32_t>(i));
  }
  rt.begin(0);
  rt.commit(0);
  rt.reset_retries(0);
  EXPECT_EQ(rt.retries(0), 0u);
}

TEST_F(HtmTest, CommitCountsAndBusyCyclesTracked) {
  AsfRuntime& rt = m_.runtime();
  rt.begin(0);
  rt.commit(0);
  EXPECT_EQ(m_.stats().tx_commits, 1u);
  EXPECT_EQ(m_.stats().tx_attempts, 1u);
}

TEST(Backoff, GrowsExponentiallyAndSaturates) {
  SimConfig cfg;
  cfg.backoff_base = 32;
  cfg.backoff_cap_shift = 4;
  BackoffManager b(cfg, 1);
  Cycle prev_max = 0;
  for (std::uint32_t retry = 0; retry < 10; ++retry) {
    const Cycle window = cfg.backoff_base << std::min(retry, 4u);
    Cycle lo = ~Cycle{0}, hi = 0;
    for (int i = 0; i < 64; ++i) {
      const Cycle w = b.wait_for(retry);
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
    EXPECT_GE(lo, window / 2);
    EXPECT_LE(hi, window);
    if (retry <= 4) {
      EXPECT_GE(hi, prev_max);
    }
    prev_max = hi;
  }
}

// ---- software fallback (lock elision) ---------------------------------------

namespace fallback {

// A transaction whose footprint can never fit a 2-way set: three lines
// exactly one L1-way-stride apart.
Task<void> big_tx(GuestCtx& c, Addr base, int* fallbacks_seen) {
  const Addr stride = 512 * kLineBytes;  // same set in the 512-set L1
  co_await c.run_tx([&]() -> Task<void> {
    co_await c.store_u64(base, 1);
    co_await c.store_u64(base + stride, 2);
    co_await c.store_u64(base + 2 * stride, 3);
  });
  *fallbacks_seen = 1;
}

}  // namespace fallback

TEST(Fallback, OversizedTransactionCompletesViaSerialFallback) {
  SimConfig cfg;
  cfg.ncores = 1;
  Machine m(cfg, DetectorKind::kSubBlock, 4);
  const Addr base = m.galloc().alloc(3 * 512 * kLineBytes + 64, 64);
  int done = 0;
  m.spawn(0, fallback::big_tx(m.ctx(0), base, &done));
  m.run(10'000'000);
  EXPECT_EQ(done, 1);
  EXPECT_GE(m.stats().fallback_runs, 1u);
  EXPECT_GE(m.stats().aborts_by_cause[static_cast<int>(AbortCause::kCapacity)],
            3u);
  EXPECT_EQ(m.peek(base, 8), 1u);
  EXPECT_EQ(m.peek(base + 512 * kLineBytes, 8), 2u);
  EXPECT_EQ(m.peek(base + 1024 * kLineBytes, 8), 3u);
}

namespace fallback {

Task<void> small_txs(GuestCtx& c, Addr cell, int n) {
  for (int i = 0; i < n; ++i) {
    co_await c.run_tx([&]() -> Task<void> {
      const std::uint64_t v = co_await c.load_u64(cell);
      co_await c.store_u64(cell, v + 1);
    });
  }
}

}  // namespace fallback

TEST(Fallback, LockHolderExcludesConcurrentTransactions) {
  // One core runs the oversized fallback transaction while another hammers
  // a counter; the counter total must still be exact (the fallback body is
  // atomic with respect to subscribed transactions).
  SimConfig cfg;
  cfg.ncores = 2;
  Machine m(cfg, DetectorKind::kSubBlock, 4);
  const Addr base = m.galloc().alloc(3 * 512 * kLineBytes + 64, 64);
  const Addr cell = m.galloc().alloc(64, 64);
  m.poke(cell, 8, 0);
  int done = 0;
  m.spawn(0, fallback::big_tx(m.ctx(0), base, &done));
  m.spawn(1, fallback::small_txs(m.ctx(1), cell, 200));
  m.run(50'000'000);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(m.peek(cell, 8), 200u);
}

}  // namespace
}  // namespace asfsim
