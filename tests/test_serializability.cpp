// Strict serializability replay check (the strongest correctness property
// test in the suite).
//
// Each "ledger" transaction reads two random cells, combines them, and
// writes the result into a third cell. The host records every COMMITTED
// operation, in commit order, together with the values the transaction
// actually observed. Afterwards the log is replayed serially against a host
// model: if the simulated HTM produced a serializable execution, every
// logged read must match the model state at its position in commit order,
// and the final guest memory must equal the model memory.
//
// Commit order is recovered from the simulated commit cycle (captured right
// after the commit point, before any other transaction can commit).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "guest/garray.hpp"
#include "guest/machine.hpp"

namespace asfsim {
namespace {

struct LedgerOp {
  Cycle commit_cycle;
  std::uint64_t seq;  // tie-break: host log append order
  std::uint32_t a, b, c;
  std::uint64_t va, vb, out;
};

struct Ledger {
  GArray64 cells;
  std::uint64_t ncells = 0;
  std::vector<LedgerOp> log;
};

constexpr std::uint64_t kCombineSalt = 0x9e3779b97f4a7c15ull;

std::uint64_t combine(std::uint64_t va, std::uint64_t vb) {
  return (va * 3 + vb * 5 + 1) ^ kCombineSalt;
}

Task<void> ledger_worker(GuestCtx& c, Ledger* lg, int ntx) {
  for (int i = 0; i < ntx; ++i) {
    const auto a = static_cast<std::uint32_t>(c.rng().below(lg->ncells));
    const auto b = static_cast<std::uint32_t>(c.rng().below(lg->ncells));
    auto t = static_cast<std::uint32_t>(c.rng().below(lg->ncells));
    std::uint64_t va = 0, vb = 0, out = 0;
    co_await c.run_tx([&]() -> Task<void> {
      va = co_await lg->cells.get(c, a);
      vb = co_await lg->cells.get(c, b);
      out = combine(va, vb);
      co_await lg->cells.set(c, t, out);
    });
    // run_tx returned => committed. The commit cycle is now() minus the
    // constant commit latency; ties are resolved by log order, which the
    // deterministic kernel makes reproducible.
    lg->log.push_back({c.now(), lg->log.size(), a, b, t, va, vb, out});
    co_await c.work(15);
  }
}

struct SerCase {
  DetectorKind detector;
  std::uint32_t nsub;
  std::uint64_t seed;
};

class Serializability : public ::testing::TestWithParam<SerCase> {};

TEST_P(Serializability, CommittedHistoryReplaysSerially) {
  const auto& [det, nsub, seed] = GetParam();
  SimConfig sim;
  sim.seed = seed;
  Machine m(sim, det, nsub);

  Ledger lg;
  lg.ncells = 96;  // 12 unpadded lines: plenty of false sharing
  lg.cells = GArray64::alloc(m.galloc(), lg.ncells);
  std::vector<std::uint64_t> model(lg.ncells);
  for (std::uint64_t i = 0; i < lg.ncells; ++i) {
    lg.cells.poke(m, i, i * 11 + 1);
    model[i] = i * 11 + 1;
  }
  for (CoreId c = 0; c < m.config().ncores; ++c) {
    m.spawn(c, ledger_worker(m.ctx(c), &lg, 60));
  }
  m.run();

  // Replay in commit order.
  std::stable_sort(lg.log.begin(), lg.log.end(),
                   [](const LedgerOp& x, const LedgerOp& y) {
                     if (x.commit_cycle != y.commit_cycle) {
                       return x.commit_cycle < y.commit_cycle;
                     }
                     return x.seq < y.seq;
                   });
  for (std::size_t i = 0; i < lg.log.size(); ++i) {
    const LedgerOp& op = lg.log[i];
    ASSERT_EQ(op.va, model[op.a])
        << "op " << i << " read cell " << op.a
        << " inconsistent with the serial order (non-serializable!)";
    ASSERT_EQ(op.vb, model[op.b]) << "op " << i << " read cell " << op.b;
    ASSERT_EQ(op.out, combine(op.va, op.vb));
    model[op.c] = op.out;
  }
  for (std::uint64_t i = 0; i < lg.ncells; ++i) {
    EXPECT_EQ(lg.cells.peek(m, i), model[i]) << "final cell " << i;
  }
  EXPECT_EQ(lg.log.size(), 8u * 60u);
}

std::string ser_name(const ::testing::TestParamInfo<SerCase>& info) {
  std::string n = to_string(info.param.detector);
  if (info.param.detector == DetectorKind::kSubBlock) {
    n += std::to_string(info.param.nsub);
  }
  n += "_seed" + std::to_string(info.param.seed);
  for (auto& ch : n) {
    if (ch == '-') ch = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    DetectorsAndSeeds, Serializability,
    ::testing::Values(SerCase{DetectorKind::kBaseline, 1, 1},
                      SerCase{DetectorKind::kBaseline, 1, 9},
                      SerCase{DetectorKind::kSubBlock, 2, 1},
                      SerCase{DetectorKind::kSubBlock, 4, 1},
                      SerCase{DetectorKind::kSubBlock, 4, 9},
                      SerCase{DetectorKind::kSubBlock, 4, 23},
                      SerCase{DetectorKind::kSubBlock, 8, 5},
                      SerCase{DetectorKind::kSubBlock, 16, 1},
                      SerCase{DetectorKind::kSubBlockWawLine, 4, 1},
                      SerCase{DetectorKind::kWarOnly, 1, 1},
                      SerCase{DetectorKind::kWarOnly, 1, 9},
                      SerCase{DetectorKind::kPerfect, 1, 1},
                      SerCase{DetectorKind::kPerfect, 1, 23}),
    ser_name);

}  // namespace
}  // namespace asfsim
