// End-to-end smoke: microworkloads run, validate, and behave sanely under
// every detector.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace asfsim {
namespace {

ExperimentConfig small_cfg(DetectorKind d, std::uint32_t nsub = 4) {
  ExperimentConfig cfg;
  cfg.detector = d;
  cfg.nsub = nsub;
  cfg.params.threads = 8;
  cfg.params.scale = 0.3;
  return cfg;
}

TEST(Smoke, CounterValidatesUnderBaseline) {
  const auto r = run_experiment("counter", small_cfg(DetectorKind::kBaseline));
  EXPECT_TRUE(r.ok()) << r.validation_error;
  EXPECT_GT(r.stats.tx_commits, 0u);
  EXPECT_GT(r.stats.total_cycles, 0u);
}

TEST(Smoke, CounterValidatesUnderSubBlock) {
  const auto r = run_experiment("counter", small_cfg(DetectorKind::kSubBlock));
  EXPECT_TRUE(r.ok()) << r.validation_error;
}

TEST(Smoke, CounterValidatesUnderPerfect) {
  const auto r = run_experiment("counter", small_cfg(DetectorKind::kPerfect));
  EXPECT_TRUE(r.ok()) << r.validation_error;
  EXPECT_EQ(r.stats.conflicts_false, 0u);
}

TEST(Smoke, BankConservesMoneyUnderAllDetectors) {
  for (const auto d :
       {DetectorKind::kBaseline, DetectorKind::kSubBlock,
        DetectorKind::kPerfect, DetectorKind::kWarOnly}) {
    const auto r = run_experiment("bank", small_cfg(d));
    EXPECT_TRUE(r.ok()) << to_string(d) << ": " << r.validation_error;
  }
}

TEST(Smoke, DeterministicAcrossRuns) {
  const auto a = run_experiment("counter", small_cfg(DetectorKind::kSubBlock));
  const auto b = run_experiment("counter", small_cfg(DetectorKind::kSubBlock));
  EXPECT_EQ(a.stats.total_cycles, b.stats.total_cycles);
  EXPECT_EQ(a.stats.tx_attempts, b.stats.tx_attempts);
  EXPECT_EQ(a.stats.conflicts_total, b.stats.conflicts_total);
  EXPECT_EQ(a.stats.conflicts_false, b.stats.conflicts_false);
}

TEST(Smoke, SubBlockReducesFalseConflicts) {
  const auto base = run_experiment("counter", small_cfg(DetectorKind::kBaseline));
  const auto sb = run_experiment("counter", small_cfg(DetectorKind::kSubBlock));
  EXPECT_GT(base.stats.conflicts_false, 0u)
      << "counter should produce false conflicts under baseline";
  EXPECT_LT(sb.stats.conflicts_false, base.stats.conflicts_false);
}

}  // namespace
}  // namespace asfsim
