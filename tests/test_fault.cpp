// Fault-injection subsystem: SimConfig validation, backoff saturation,
// FaultPlan determinism, zero-cost-when-disabled, and the JobSpec v2 cache
// keying of every robustness knob (docs/robustness.md).
#include <gtest/gtest.h>

#include <vector>

#include "fault/plan.hpp"
#include "guest/machine.hpp"
#include "harness/experiment.hpp"
#include "htm/backoff.hpp"
#include "runner/job_spec.hpp"
#include "runner/runner.hpp"
#include "sim/config.hpp"
#include "stats/serialize.hpp"

namespace asfsim {
namespace {

// ---- SimConfig::validate ---------------------------------------------------

TEST(SimConfigValidate, DefaultConfigIsValid) {
  EXPECT_EQ(SimConfig{}.validate(), "");
  EXPECT_EQ(SimConfig{}.validate(4), "");
  EXPECT_EQ(SimConfig{}.validate(16), "");  // kMaxSubBlocks
}

TEST(SimConfigValidate, RejectsBrokenGeometry) {
  {
    SimConfig c;
    c.ncores = 0;
    EXPECT_NE(c.validate(), "");
  }
  {
    SimConfig c;
    c.l1.size_bytes = 0;
    EXPECT_NE(c.validate(), "");
  }
  {
    SimConfig c;
    c.l1.ways = 0;
    EXPECT_NE(c.validate(), "");
  }
  {
    SimConfig c;
    c.l2.line_bytes = 48;  // not a power of two
    EXPECT_NE(c.validate(), "");
  }
  {
    SimConfig c;
    c.l1.size_bytes = 1000;  // not divisible by line*ways
    EXPECT_NE(c.validate(), "");
  }
}

TEST(SimConfigValidate, RejectsBadSubBlockCounts) {
  const SimConfig c;
  EXPECT_NE(c.validate(0), "");
  EXPECT_NE(c.validate(3), "");   // not a power of two
  EXPECT_NE(c.validate(32), "");  // beyond kMaxSubBlocks tracking width
}

TEST(SimConfigValidate, RejectsZeroBackoffBase) {
  SimConfig c;
  c.backoff_base = 0;
  EXPECT_NE(c.validate(), "");
}

TEST(SimConfigValidate, RejectsFallbackWithZeroCapacityBudget) {
  SimConfig c;
  c.max_capacity_aborts = 0;  // fallback enabled but unreachable
  EXPECT_NE(c.validate(), "");
  c.max_tx_retries = 0;  // fallback disabled: now fine
  EXPECT_EQ(c.validate(), "");
}

TEST(SimConfigValidate, RejectsOutOfRangeFaultRates) {
  SimConfig c;
  c.fault.spurious_abort_rate = 1.5;
  EXPECT_NE(c.validate(), "");
  c.fault.spurious_abort_rate = -0.1;
  EXPECT_NE(c.validate(), "");
  c.fault.spurious_abort_rate = 1.0;
  EXPECT_EQ(c.validate(), "");
}

TEST(SimConfigValidate, MachineRejectsInvalidConfigsAtConstruction) {
  SimConfig c;
  c.ncores = 0;
  EXPECT_THROW(Machine m(c, DetectorKind::kBaseline, 1),
               std::invalid_argument);
  EXPECT_THROW(Machine m(SimConfig{}, DetectorKind::kSubBlock, 3),
               std::invalid_argument);
}

// ---- backoff saturation ----------------------------------------------------

TEST(Backoff, SaturatesInsteadOfOverflowing) {
  SimConfig c;
  c.backoff_base = Cycle{1} << 60;
  c.backoff_cap_shift = 200;  // base << shift would wrap many times over
  BackoffManager b(c, /*seed=*/1);
  for (std::uint32_t retry = 0; retry < 300; ++retry) {
    const Cycle w = b.wait_for(retry);
    EXPECT_GT(w, 0u) << "retry " << retry;  // a zero wait = busy-spin
    EXPECT_LE(w, ~Cycle{0} >> 1) << "retry " << retry;
  }
}

TEST(Backoff, SmallWindowsStillGrowExponentially) {
  SimConfig c;  // base 32, cap 8
  BackoffManager b(c, 1);
  // Window at retry r is 32 << min(r, 8); the draw is in [w/2, w].
  EXPECT_LE(b.wait_for(0), 32u);
  EXPECT_GE(b.wait_for(8), (32u << 8) / 2);
  EXPECT_LE(b.wait_for(20), 32u << 8);  // capped
}

// ---- FaultPlan determinism -------------------------------------------------

FaultConfig some_faults() {
  FaultConfig fc;
  fc.spurious_abort_rate = 0.25;
  fc.commit_abort_rate = 0.1;
  fc.evict_rate = 0.05;
  fc.probe_jitter = 7;
  fc.sched_jitter = 3;
  return fc;
}

TEST(FaultPlan, SameSeedSameDecisionStream) {
  FaultPlan a(some_faults(), 42, 4);
  FaultPlan b(some_faults(), 42, 4);
  for (int i = 0; i < 2000; ++i) {
    const CoreId core = static_cast<CoreId>(i % 4);
    EXPECT_EQ(a.spurious_abort(core), b.spurious_abort(core));
    EXPECT_EQ(a.commit_abort(core), b.commit_abort(core));
    EXPECT_EQ(a.forced_eviction(core), b.forced_eviction(core));
    EXPECT_EQ(a.probe_jitter(core), b.probe_jitter(core));
    EXPECT_EQ(a.sched_jitter(core), b.sched_jitter(core));
  }
  EXPECT_EQ(a.counters().spurious_aborts, b.counters().spurious_aborts);
  EXPECT_EQ(a.counters().probe_jitter_cycles, b.counters().probe_jitter_cycles);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a(some_faults(), 1, 1);
  FaultPlan b(some_faults(), 2, 1);
  int disagreements = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.spurious_abort(0) != b.spurious_abort(0)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultPlan, CoreStreamsAreIndependent) {
  // Draining core 0 must not change what core 1 sees.
  FaultPlan a(some_faults(), 7, 2);
  FaultPlan b(some_faults(), 7, 2);
  for (int i = 0; i < 500; ++i) (void)a.spurious_abort(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.spurious_abort(1), b.spurious_abort(1));
  }
}

TEST(FaultPlan, RateExtremesAndCounters) {
  FaultConfig always;
  always.spurious_abort_rate = 1.0;
  FaultPlan p(always, 1, 1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(p.spurious_abort(0));
  EXPECT_EQ(p.counters().spurious_aborts, 100u);
  EXPECT_EQ(p.counters().commit_aborts, 0u);

  FaultConfig never;  // all rates zero
  FaultPlan q(never, 1, 1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(q.spurious_abort(0));
  EXPECT_EQ(q.counters().spurious_aborts, 0u);
  EXPECT_EQ(q.probe_jitter(0), 0u);
}

// ---- zero cost when disabled ----------------------------------------------

TEST(FaultPlan, CleanMachineCarriesNoPlan) {
  Machine m(SimConfig{}, DetectorKind::kSubBlock, 4);
  EXPECT_EQ(m.fault_plan(), nullptr);
}

TEST(FaultPlan, FaultyMachineCarriesOne) {
  SimConfig c;
  c.fault.probe_jitter = 2;
  Machine m(c, DetectorKind::kSubBlock, 4);
  ASSERT_NE(m.fault_plan(), nullptr);
  EXPECT_EQ(m.fault_plan()->config().probe_jitter, 2u);
}

// ---- end-to-end determinism with faults ------------------------------------

ExperimentConfig faulty_config() {
  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  cfg.sim.fault = some_faults();
  cfg.sim.fault.spurious_abort_rate = 0.01;  // keep the run short
  cfg.sim.fault.commit_abort_rate = 0.02;
  return cfg;
}

TEST(FaultDeterminism, RepeatRunsAreByteIdentical) {
  const ExperimentResult a = run_experiment("counter", faulty_config());
  const ExperimentResult b = run_experiment("counter", faulty_config());
  ASSERT_TRUE(a.ok()) << a.validation_error;
  EXPECT_EQ(serialize_stats(a.stats), serialize_stats(b.stats));
}

TEST(FaultDeterminism, StatsAreIdenticalAcrossWorkerCounts) {
  // The acceptance criterion: fault runs are byte-deterministic whether the
  // runner executes them on 1 worker or 8.
  std::vector<std::string> serial, parallel;
  for (const unsigned jobs : {1u, 8u}) {
    runner::RunnerOptions opts;
    opts.jobs = jobs;
    opts.use_cache = false;
    opts.manifest_path = "-";
    opts.progress = runner::RunnerOptions::Progress::kOff;
    runner::Runner r(opts);
    auto& out = jobs == 1 ? serial : parallel;
    for (const std::uint64_t seed : {1, 2, 3, 4}) {
      ExperimentConfig cfg = faulty_config();
      cfg.params.seed = seed;
      out.push_back(serialize_stats(r.get("counter", cfg).stats));
    }
  }
  EXPECT_EQ(serial, parallel);
}

TEST(FaultDeterminism, InjectionActuallyChangesTheRun) {
  ExperimentConfig clean = faulty_config();
  clean.sim.fault = FaultConfig{};
  const ExperimentResult with = run_experiment("counter", faulty_config());
  const ExperimentResult without = run_experiment("counter", clean);
  EXPECT_NE(serialize_stats(with.stats), serialize_stats(without.stats));
}

// ---- JobSpec v2 cache keying -----------------------------------------------

TEST(JobSpecV2, EveryRobustnessKnobChangesTheHash) {
  ExperimentConfig base;
  const auto base_spec = runner::make_job_spec("counter", base);
  EXPECT_NE(base_spec.canonical.find("asfsim-jobspec v5"), std::string::npos);

  std::vector<runner::JobSpec> variants;
  {
    auto c = base;
    c.sim.fault.spurious_abort_rate = 0.01;
    variants.push_back(runner::make_job_spec("counter", c));
  }
  {
    auto c = base;
    c.sim.fault.evict_rate = 0.01;
    variants.push_back(runner::make_job_spec("counter", c));
  }
  {
    auto c = base;
    c.sim.fault.commit_abort_rate = 0.01;
    variants.push_back(runner::make_job_spec("counter", c));
  }
  {
    auto c = base;
    c.sim.fault.probe_jitter = 1;
    variants.push_back(runner::make_job_spec("counter", c));
  }
  {
    auto c = base;
    c.sim.fault.sched_jitter = 1;
    variants.push_back(runner::make_job_spec("counter", c));
  }
  {
    auto c = base;
    c.sim.fault.mutation = ProtocolMutation::kSkipCommitValidation;
    variants.push_back(runner::make_job_spec("counter", c));
  }
  {
    auto c = base;
    c.sim.max_tx_retries = 5;
    variants.push_back(runner::make_job_spec("counter", c));
  }
  {
    auto c = base;
    c.sim.watchdog_cycles = 1000;
    variants.push_back(runner::make_job_spec("counter", c));
  }
  for (const auto& v : variants) {
    EXPECT_NE(v.hash_hex, base_spec.hash_hex) << v.canonical;
  }
}

TEST(JobSpecV2, HostWallLimitDoesNotChangeTheHash) {
  ExperimentConfig a;
  ExperimentConfig b;
  b.wall_limit_s = 30.0;  // host-side only: same simulation, same cache key
  EXPECT_EQ(runner::make_job_spec("counter", a).hash_hex,
            runner::make_job_spec("counter", b).hash_hex);
}

// ---- mutation name parsing -------------------------------------------------

TEST(MutationNames, RoundTripAndRejectUnknown) {
  for (const ProtocolMutation m :
       {ProtocolMutation::kDropDirtySubblock,
        ProtocolMutation::kForgetInvalidatedSpecinfo,
        ProtocolMutation::kSkipWrittenMask,
        ProtocolMutation::kSkipCommitValidation}) {
    ProtocolMutation back = ProtocolMutation::kNone;
    ASSERT_TRUE(parse_mutation(to_string(m), back));
    EXPECT_EQ(back, m);
  }
  ProtocolMutation out = ProtocolMutation::kSkipWrittenMask;
  EXPECT_TRUE(parse_mutation("none", out));
  EXPECT_EQ(out, ProtocolMutation::kNone);
  EXPECT_TRUE(parse_mutation("", out));
  EXPECT_FALSE(parse_mutation("drop-everything", out));
}

}  // namespace
}  // namespace asfsim
