// Pins the safe coroutine shapes for the GCC 12 co_await-in-condition
// miscompile. The full story (failure mode, the transplant-like signature
// that exposed it, the hoisting workaround) lives in
// docs/static_analysis.md §R1, which is also enforced mechanically by
// tools/asfsim_lint (`coawait-in-condition`). These tests exercise the
// hoisted shapes end to end and must keep passing on every toolchain the
// project builds with.
#include <gtest/gtest.h>

#include "guest/machine.hpp"

namespace asfsim {
namespace {

struct Fixture {
  SimConfig cfg;
  Machine m;
  Addr cell;
  Fixture() : cfg(make_cfg()), m(cfg, DetectorKind::kBaseline) {
    cell = m.galloc().alloc(64, 8);
    for (int i = 0; i < 8; ++i) m.poke(cell + 8 * i, 8, 0);
  }
  static SimConfig make_cfg() {
    SimConfig c;
    c.ncores = 1;
    return c;
  }
};

// The transplant shape: nested Task<void> member-style coroutine whose first
// suspend point is reachable through an if/else chain.
Task<void> nested_branchy(GuestCtx& c, Addr base, Addr u, Addr uparent,
                          Addr v) {
  if (uparent == 0) {
    co_await c.store_u64(base, v);
  } else {
    const Addr left = co_await c.load_u64(uparent);  // hoisted (workaround)
    if (left == u) {
      co_await c.store_u64(uparent, v);
    } else {
      co_await c.store_u64(uparent + 8, v);
    }
  }
  if (v != 0) co_await c.store_u64(v, uparent);
}

Task<void> driver(GuestCtx& c, Addr base, int* steps) {
  co_await nested_branchy(c, base, 1, 0, 0);
  ++*steps;
  co_await nested_branchy(c, base, 1, base + 16, 0);
  ++*steps;
  co_await nested_branchy(c, base, 1, base + 16, base + 32);
  ++*steps;
  // Awaited value used in a loop condition via a named local.
  Addr cur = co_await c.load_u64(base + 32);
  int guard = 0;
  while (cur != 0 && guard < 10) {
    cur = co_await c.load_u64(base + 40);
    ++guard;
  }
  ++*steps;
}

TEST(CompilerWorkaround, NestedBranchyCoroutinesComplete) {
  Fixture f;
  int steps = 0;
  f.m.spawn(0, driver(f.m.ctx(0), f.cell, &steps));
  f.m.run(1'000'000);  // throws DeadlockError if the miscompile returns
  EXPECT_EQ(steps, 4);
}

// Deep nesting: value-returning tasks chained through three levels.
Task<std::uint64_t> level3(GuestCtx& c, Addr a) {
  const std::uint64_t v = co_await c.load_u64(a);
  co_return v + 1;
}
Task<std::uint64_t> level2(GuestCtx& c, Addr a) {
  const std::uint64_t v = co_await level3(c, a);
  co_return v * 2;
}
Task<std::uint64_t> level1(GuestCtx& c, Addr a) {
  const std::uint64_t v = co_await level2(c, a);
  co_await c.store_u64(a, v);
  co_return v;
}
Task<void> deep_driver(GuestCtx& c, Addr a, std::uint64_t* out) {
  *out = co_await level1(c, a);
}

TEST(CompilerWorkaround, DeepTaskNestingPropagatesValues) {
  Fixture f;
  f.m.poke(f.cell, 8, 20);
  std::uint64_t out = 0;
  f.m.spawn(0, deep_driver(f.m.ctx(0), f.cell, &out));
  f.m.run(1'000'000);
  EXPECT_EQ(out, 42u);
  EXPECT_EQ(f.m.peek(f.cell, 8), 42u);
}

// Exception propagation (TxAbort analogue) through nested tasks.
struct Boom {};
Task<void> thrower(GuestCtx& c, Addr a) {
  co_await c.load_u64(a);
  throw Boom{};
}
Task<void> catcher(GuestCtx& c, Addr a, bool* caught) {
  try {
    co_await thrower(c, a);
  } catch (const Boom&) {
    *caught = true;
  }
  co_await c.store_u64(a, 7);
}

TEST(CompilerWorkaround, ExceptionsUnwindNestedTasks) {
  Fixture f;
  bool caught = false;
  f.m.spawn(0, catcher(f.m.ctx(0), f.cell, &caught));
  f.m.run(1'000'000);
  EXPECT_TRUE(caught);
  EXPECT_EQ(f.m.peek(f.cell, 8), 7u);
}

}  // namespace
}  // namespace asfsim
