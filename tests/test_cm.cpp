// Contention-management subsystem (src/cm/, docs/contention.md): policy
// decision units, karma saturation, the serialize fallback's guaranteed
// termination with the watchdog disarmed, the chaos starvation oracle, the
// stats-blob v5 section, SimConfig contradiction rejection, parallel-runner
// determinism under every policy, and the trace-summary forward-progress
// replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cm/policy.hpp"
#include "fault/chaos.hpp"
#include "guest/garray.hpp"
#include "guest/machine.hpp"
#include "harness/experiment.hpp"
#include "runner/runner.hpp"
#include "sim/config.hpp"
#include "stats/serialize.hpp"
#include "trace/summary.hpp"

namespace asfsim {
namespace {

CmConfig cm_cfg(CmPolicyKind policy, std::uint32_t max_retries = 8,
                std::uint32_t karma = 64, bool stats = false) {
  CmConfig cm;
  cm.policy = policy;
  cm.max_retries = max_retries;
  cm.karma = karma;
  cm.stats = stats;
  return cm;
}

CmSide side(CoreId core, bool in_tx, Cycle priority) {
  CmSide s;
  s.core = core;
  s.in_tx = in_tx;
  s.priority = priority;
  return s;
}

// ---- policy decision units -------------------------------------------------

TEST(Policy, FactoryReturnsTheConfiguredKind) {
  for (const CmPolicyKind k :
       {CmPolicyKind::kRequesterWins, CmPolicyKind::kPolite,
        CmPolicyKind::kTimestamp, CmPolicyKind::kSerialize}) {
    EXPECT_EQ(make_policy(cm_cfg(k))->kind(), k) << to_string(k);
  }
}

TEST(Policy, RequesterWinsAlwaysDoomsTheVictim) {
  const auto p = make_policy(cm_cfg(CmPolicyKind::kRequesterWins));
  EXPECT_EQ(p->resolve(side(0, true, 999), side(1, true, 1)),
            CmLoser::kVictim);
  EXPECT_EQ(p->resolve(side(0, false, 0), side(1, true, 5)),
            CmLoser::kVictim);
  EXPECT_EQ(p->stated_abort_bound(8), 0u);
  EXPECT_EQ(p->serialize_after(), 0u);
}

TEST(Policy, PoliteRequesterStepsAsideOnlyInsideATransaction) {
  const auto p = make_policy(cm_cfg(CmPolicyKind::kPolite));
  EXPECT_EQ(p->resolve(side(0, true, 1), side(1, true, 999)),
            CmLoser::kRequester);
  // A non-transactional requester has nothing to retry: the victim loses.
  EXPECT_EQ(p->resolve(side(0, false, 0), side(1, true, 1)),
            CmLoser::kVictim);
  EXPECT_EQ(p->stated_abort_bound(8), 0u);
}

TEST(Policy, TimestampOldestWinsAndTiesKeepTheHistoricalOutcome) {
  const auto p = make_policy(cm_cfg(CmPolicyKind::kTimestamp));
  // Older (lower priority value) requester dooms the victim.
  EXPECT_EQ(p->resolve(side(0, true, 10), side(1, true, 50)),
            CmLoser::kVictim);
  // Younger requester steps aside.
  EXPECT_EQ(p->resolve(side(0, true, 50), side(1, true, 10)),
            CmLoser::kRequester);
  // Ties keep requester-wins.
  EXPECT_EQ(p->resolve(side(0, true, 10), side(1, true, 10)),
            CmLoser::kVictim);
  // A non-transactional requester always wins.
  EXPECT_EQ(p->resolve(side(0, false, 0), side(1, true, 0)),
            CmLoser::kVictim);
}

TEST(Policy, TimestampBoundScalesWithTheCoreCount) {
  const auto p = make_policy(cm_cfg(CmPolicyKind::kTimestamp));
  EXPECT_EQ(p->stated_abort_bound(2), 3u);
  EXPECT_EQ(p->stated_abort_bound(8), 9u);
  EXPECT_GT(p->stated_abort_bound(8), p->stated_abort_bound(2));
  EXPECT_EQ(p->serialize_after(), 0u);
}

TEST(Policy, SerializeStatesItsRetryThresholdAsTheBound) {
  const auto p = make_policy(cm_cfg(CmPolicyKind::kSerialize, 6));
  EXPECT_EQ(p->resolve(side(0, true, 99), side(1, true, 1)),
            CmLoser::kVictim);  // resolution itself stays requester-wins
  EXPECT_EQ(p->stated_abort_bound(8), 6u);
  EXPECT_EQ(p->serialize_after(), 6u);
}

// ---- guest-side: the serialize fallback's termination guarantee ------------

Task<void> hammer(GuestCtx& c, GArray64* cell, int ntx) {
  for (int i = 0; i < ntx; ++i) {
    co_await c.run_tx([&]() -> Task<void> {
      const std::uint64_t v = co_await cell->get(c, 0);
      // A long in-transaction window, as in the livelock workload: plenty
      // of time for every other core to doom this attempt.
      co_await c.work(150);
      co_await cell->set(c, 0, v + 1);
    });
  }
}

TEST(SerializeFallback, LivelockStormTerminatesWithTheWatchdogDisarmed) {
  SimConfig sim;
  sim.ncores = 4;
  sim.max_tx_retries = 0;    // classic retry-count fallback disabled
  sim.watchdog_cycles = 0;   // watchdog disarmed: no timeout safety net
  sim.cm = cm_cfg(CmPolicyKind::kSerialize, 6, 64, /*stats=*/true);
  ASSERT_EQ(sim.validate(), "");
  Machine m(sim, DetectorKind::kSubBlock, 4);
  GArray64 cell = GArray64::alloc(m.galloc(), 1);
  cell.poke(m, 0, 0);
  for (CoreId c = 0; c < sim.ncores; ++c) {
    m.spawn(c, hammer(m.ctx(c), &cell, 30));
  }
  constexpr Cycle kLimit = 5'000'000;
  const Cycle end = m.run(kLimit);
  ASSERT_LT(end, kLimit) << "storm did not terminate";
  EXPECT_EQ(cell.peek(m, 0), 4u * 30u);
  EXPECT_GT(m.stats().fallback_runs, 0u);
  EXPECT_GT(m.stats().cm_fallback_acquisitions, 0u);
  ASSERT_TRUE(m.stats().cm_enabled);
  // The policy's promise held: no core's streak exceeded the threshold
  // (retries reach the bound, then the fallback completes the tx).
  for (const std::uint64_t streak : m.stats().cm_max_consec_aborts) {
    EXPECT_LE(streak, 6u);
  }
}

TEST(Karma, SaturatesAtTheMaximumWeightWithoutWrapping) {
  // cm.karma is multiplied into a 64-bit cycle age and floored at zero;
  // the extreme weight must neither wrap priorities nor break progress.
  SimConfig sim;
  sim.ncores = 4;
  sim.cm = cm_cfg(CmPolicyKind::kTimestamp, 8, ~std::uint32_t{0});
  ASSERT_EQ(sim.validate(), "");
  std::vector<std::string> blobs;
  for (int rep = 0; rep < 2; ++rep) {
    Machine m(sim, DetectorKind::kSubBlock, 4);
    GArray64 cell = GArray64::alloc(m.galloc(), 1);
    cell.poke(m, 0, 0);
    for (CoreId c = 0; c < sim.ncores; ++c) {
      m.spawn(c, hammer(m.ctx(c), &cell, 20));
    }
    constexpr Cycle kLimit = 5'000'000;
    ASSERT_LT(m.run(kLimit), kLimit);
    EXPECT_EQ(cell.peek(m, 0), 4u * 20u);
    blobs.push_back(serialize_stats(m.stats()));
  }
  // Seed-deterministic: the same config reproduces the same stats blob.
  EXPECT_EQ(blobs[0], blobs[1]);
}

// ---- chaos starvation oracle ----------------------------------------------

ChaosCell starvation_cell(bool planted_unfair) {
  ChaosCell cell;
  cell.detector = DetectorKind::kSubBlock;
  cell.nsub = 4;
  cell.cm = cm_cfg(CmPolicyKind::kTimestamp);
  cell.max_tx_retries = 0;  // nothing caps the streak but the policy
  cell.ncells = 4;          // total conflict
  cell.ntx = 120;
  if (planted_unfair) {
    cell.fault.mutation = ProtocolMutation::kUnfairKarmaReset;
  }
  return cell;
}

TEST(StarvationOracle, PlantedUnfairPolicyTripsKStarvation) {
  const ChaosCellResult r = run_chaos_cell(starvation_cell(true));
  EXPECT_EQ(r.verdict, ChaosVerdict::kStarvation) << r.detail;
  EXPECT_NE(r.detail.find("consecutive aborts"), std::string::npos)
      << r.detail;
}

TEST(StarvationOracle, CleanTimestampStaysWithinItsStatedBound) {
  const ChaosCellResult r = run_chaos_cell(starvation_cell(false));
  EXPECT_EQ(r.verdict, ChaosVerdict::kClean) << r.detail;
  const auto bound =
      make_policy(cm_cfg(CmPolicyKind::kTimestamp))->stated_abort_bound(8);
  EXPECT_LE(r.max_streak, bound);
}

// ---- stats blob v5 ----------------------------------------------------------

Stats cm_stats_fixture() {
  Stats s;
  s.tx_attempts = 40;
  s.tx_commits = 30;
  s.tx_aborts = 10;
  s.total_cycles = 5000;
  s.cm_enabled = true;
  s.cm_max_consec_aborts = {4, 0, 9};
  s.cm_wasted_by_core = {120, 0, 777};
  s.cm_first_commit_cycle = {90, 110, 4000};
  s.cm_policy_decisions = 25;
  s.cm_requester_losses = 7;
  s.cm_fallback_acquisitions = 2;
  return s;
}

TEST(CmStatsBlob, V5SectionRoundTrips) {
  const Stats s = cm_stats_fixture();
  const std::string blob = serialize_stats(s);
  EXPECT_EQ(blob.rfind("asfsim-stats v5", 0), 0u);
  Stats back;
  ASSERT_TRUE(deserialize_stats(blob, back));
  EXPECT_TRUE(back.cm_enabled);
  EXPECT_EQ(back.cm_max_consec_aborts, s.cm_max_consec_aborts);
  EXPECT_EQ(back.cm_wasted_by_core, s.cm_wasted_by_core);
  EXPECT_EQ(back.cm_first_commit_cycle, s.cm_first_commit_cycle);
  EXPECT_EQ(back.cm_policy_decisions, 25u);
  EXPECT_EQ(back.cm_requester_losses, 7u);
  EXPECT_EQ(back.cm_fallback_acquisitions, 2u);
  // Full-blob re-serialization is byte-identical (no lossy field).
  EXPECT_EQ(serialize_stats(back), blob);
}

TEST(CmStatsBlob, DisabledSectionKeepsTheV3HeaderAndNoCmKeys) {
  Stats s;
  s.tx_commits = 5;
  const std::string blob = serialize_stats(s);
  EXPECT_EQ(blob.rfind("asfsim-stats v3", 0), 0u);
  EXPECT_EQ(blob.find("cm_enabled"), std::string::npos);
  Stats back;
  ASSERT_TRUE(deserialize_stats(blob, back));
  EXPECT_FALSE(back.cm_enabled);
}

TEST(CmStatsBlob, ProvWithoutCmKeepsTheV4Header) {
  Stats s;
  s.prov_enabled = true;
  const std::string blob = serialize_stats(s);
  EXPECT_EQ(blob.rfind("asfsim-stats v4", 0), 0u);
  EXPECT_EQ(blob.find("cm_enabled"), std::string::npos);
  Stats back;
  ASSERT_TRUE(deserialize_stats(blob, back));
  EXPECT_TRUE(back.prov_enabled);
  EXPECT_FALSE(back.cm_enabled);
}

TEST(CmStatsBlob, V5ComposesWithTheProvenanceSection) {
  Stats s = cm_stats_fixture();
  s.prov_enabled = true;
  s.prov_site_names = {"oltp.records"};
  s.prov_site_table = {64, 16, 1024, 5, 4, 3, 2, 1, 0, 6, 900};
  const std::string blob = serialize_stats(s);
  EXPECT_EQ(blob.rfind("asfsim-stats v5", 0), 0u);
  Stats back;
  ASSERT_TRUE(deserialize_stats(blob, back));
  EXPECT_TRUE(back.prov_enabled);
  EXPECT_TRUE(back.cm_enabled);
  EXPECT_EQ(back.prov_site_names, s.prov_site_names);
  EXPECT_EQ(back.prov_site_table, s.prov_site_table);
  EXPECT_EQ(back.cm_wasted_by_core, s.cm_wasted_by_core);
}

TEST(CmStatsBlob, TruncatedV5BlobIsRejected) {
  const std::string blob = serialize_stats(cm_stats_fixture());
  Stats junk;
  EXPECT_FALSE(deserialize_stats(blob.substr(0, blob.size() - 4), junk));
}

// ---- SimConfig contradiction rejection --------------------------------------

TEST(CmValidate, EveryPolicyIsValidUnderTheDefaultConfig) {
  for (const CmPolicyKind k :
       {CmPolicyKind::kRequesterWins, CmPolicyKind::kPolite,
        CmPolicyKind::kTimestamp, CmPolicyKind::kSerialize}) {
    SimConfig sim;
    sim.cm.policy = k;
    EXPECT_EQ(sim.validate(), "") << to_string(k);
  }
}

TEST(CmValidate, RejectsAZeroRetryThreshold) {
  SimConfig sim;
  sim.cm.max_retries = 0;
  EXPECT_NE(sim.validate().find("cm.max_retries"), std::string::npos);
  sim.cm.policy = CmPolicyKind::kSerialize;
  EXPECT_NE(sim.validate().find("serialize fallback"), std::string::npos);
}

TEST(CmValidate, RejectsSerializeWithTheFallbackPathDisabled) {
  SimConfig sim;
  sim.cm.policy = CmPolicyKind::kSerialize;
  sim.max_tx_retries = 0;
  sim.max_capacity_aborts = 0;
  EXPECT_NE(sim.validate().find("max_capacity_aborts"), std::string::npos);
}

TEST(CmValidate, RejectsAWatchdogTighterThanTheSerializeFloor) {
  SimConfig sim;
  sim.cm.policy = CmPolicyKind::kSerialize;
  sim.cm.max_retries = 8;
  const Cycle floor = Cycle{8 + 1} * (sim.abort_latency + sim.backoff_base);
  sim.watchdog_cycles = floor - 1;
  EXPECT_NE(sim.validate().find("watchdog_cycles"), std::string::npos);
  sim.watchdog_cycles = floor;
  EXPECT_EQ(sim.validate(), "");
}

// ---- runner determinism under every policy ----------------------------------

runner::RunnerOptions uncached_opts(unsigned jobs) {
  runner::RunnerOptions o;
  o.jobs = jobs;
  o.use_cache = false;
  o.manifest_path = "-";
  o.progress = runner::RunnerOptions::Progress::kOff;
  return o;
}

/// serialize_stats covers every Stats field (lint stats-blob-completeness),
/// so string equality is full-report equality.
std::vector<std::string> run_policy_matrix(unsigned jobs) {
  runner::Runner r(uncached_opts(jobs));
  std::vector<std::shared_future<ExperimentResult>> futs;
  for (const CmPolicyKind k :
       {CmPolicyKind::kRequesterWins, CmPolicyKind::kPolite,
        CmPolicyKind::kTimestamp, CmPolicyKind::kSerialize}) {
    for (const char* w : {"counter", "livelock"}) {
      ExperimentConfig cfg;
      cfg.params.threads = 4;
      cfg.params.scale = 0.25;
      cfg.sim.ncores = 4;
      cfg.detector = DetectorKind::kSubBlock;
      cfg.nsub = 4;
      cfg.sim.cm = cm_cfg(k, 8, 64, /*stats=*/true);
      futs.push_back(r.submit(w, cfg));
    }
  }
  std::vector<std::string> out;
  out.reserve(futs.size());
  for (auto& f : futs) {
    const ExperimentResult res = f.get();
    EXPECT_TRUE(res.ok()) << res.validation_error;
    out.push_back(serialize_stats(res.stats));
  }
  return out;
}

TEST(CmDeterminism, SerialAndJobs8AreByteIdenticalUnderEveryPolicy) {
  const auto serial = run_policy_matrix(1);
  const auto parallel = run_policy_matrix(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
  }
}

TEST(CmRun, EnablingAccountingDoesNotPerturbTheSimulation) {
  ExperimentConfig cfg;
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  cfg.detector = DetectorKind::kSubBlock;
  const ExperimentResult off = run_experiment("counter", cfg);
  cfg.sim.cm.stats = true;
  const ExperimentResult on = run_experiment("counter", cfg);
  ASSERT_TRUE(off.ok() && on.ok());
  EXPECT_FALSE(off.stats.cm_enabled);
  EXPECT_TRUE(on.stats.cm_enabled);
  EXPECT_EQ(off.stats.total_cycles, on.stats.total_cycles);
  EXPECT_EQ(off.stats.tx_commits, on.stats.tx_commits);
  EXPECT_EQ(off.stats.tx_aborts, on.stats.tx_aborts);
}

TEST(CmRun, PoliteRoutesConflictsThroughThePolicy) {
  ExperimentConfig cfg;
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.sim.cm = cm_cfg(CmPolicyKind::kPolite, 8, 64, /*stats=*/true);
  const ExperimentResult r = run_experiment("livelock", cfg);
  ASSERT_TRUE(r.ok()) << r.validation_error;
  EXPECT_GT(r.stats.cm_policy_decisions, 0u);
  EXPECT_GT(r.stats.cm_requester_losses, 0u);
}

// ---- trace-summary forward-progress replay ----------------------------------

trace::TraceEvent ev_abort(CoreId core, Cycle cycle, AbortCause cause) {
  trace::TraceEvent e;
  e.kind = trace::TraceEventKind::kAbort;
  e.core = core;
  e.cycle = cycle;
  e.cause = cause;
  return e;
}

TEST(SummaryStarvation, ReplaysStreaksWithTheRuntimesAccountingRules) {
  trace::TraceSummary s;
  EXPECT_FALSE(s.has_cm_events());
  // Three consecutive conflict aborts on core 0, a lock-wait in between
  // (neither counts nor resets), then a commit resets the streak.
  s.add(ev_abort(0, 100, AbortCause::kConflict));
  s.add(ev_abort(0, 200, AbortCause::kLockWait));
  s.add(ev_abort(0, 300, AbortCause::kConflict));
  s.add(ev_abort(0, 400, AbortCause::kConflict));
  trace::TraceEvent commit;
  commit.kind = trace::TraceEventKind::kCommit;
  commit.core = 0;
  commit.cycle = 500;
  s.add(commit);
  s.add(ev_abort(0, 600, AbortCause::kConflict));
  ASSERT_GE(s.max_consec_aborts.size(), 1u);
  EXPECT_EQ(s.max_consec_aborts[0], 3u);
  EXPECT_EQ(s.consec_aborts[0], 1u);  // post-commit streak

  // Policy decisions: loser == other marks a requester loss.
  trace::TraceEvent pol;
  pol.kind = trace::TraceEventKind::kPolicy;
  pol.core = 1;
  pol.other = 2;
  pol.loser = 2;
  pol.cycle = 700;
  s.add(pol);
  EXPECT_TRUE(s.has_cm_events());
  EXPECT_EQ(s.requester_losses, 1u);

  std::ostringstream os;
  trace::print_summary(s, os, 5);
  EXPECT_NE(os.str().find("Forward progress"), std::string::npos);
  EXPECT_NE(os.str().find("Max consecutive aborts"), std::string::npos);
}

TEST(SummaryStarvation, FallbackEventResetsTheStreakAndMarksCmActivity) {
  trace::TraceSummary s;
  s.add(ev_abort(2, 10, AbortCause::kConflict));
  s.add(ev_abort(2, 20, AbortCause::kConflict));
  trace::TraceEvent fb;
  fb.kind = trace::TraceEventKind::kFallback;
  fb.core = 2;
  fb.cycle = 30;
  s.add(fb);
  EXPECT_EQ(s.max_consec_aborts[2], 2u);
  EXPECT_EQ(s.consec_aborts[2], 0u);
  EXPECT_FALSE(s.has_cm_events());  // kFallback alone is not a cm event

  trace::TraceEvent acq;
  acq.kind = trace::TraceEventKind::kFallbackAcquired;
  acq.core = 2;
  acq.cycle = 40;
  s.add(acq);
  EXPECT_TRUE(s.has_cm_events());
}

// ---- mutation names ---------------------------------------------------------

TEST(CmMutations, PolicyMutationNamesRoundTrip) {
  for (const ProtocolMutation m :
       {ProtocolMutation::kUnfairKarmaReset,
        ProtocolMutation::kFallbackLockLeak,
        ProtocolMutation::kSerializeSkipsValidation}) {
    ProtocolMutation parsed = ProtocolMutation::kNone;
    ASSERT_TRUE(parse_mutation(to_string(m), parsed)) << to_string(m);
    EXPECT_EQ(parsed, m);
  }
}

}  // namespace
}  // namespace asfsim
