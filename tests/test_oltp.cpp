// OLTP/KV workload family: zipf generator statistics, YCSB mix presets,
// throughput/latency metrics, and byte-determinism across --jobs values.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "oltp/oltp_config.hpp"
#include "oltp/zipf.hpp"
#include "runner/runner.hpp"
#include "sim/random.hpp"
#include "stats/serialize.hpp"

namespace asfsim {
namespace {

// ---- zipf generator --------------------------------------------------------

class ZipfChiSquared : public ::testing::TestWithParam<double> {};

/// The sampled histogram must match the analytic pmf. The generator is
/// deterministic, so this is a golden statistical check, not a flaky one:
/// with 64 cells and 200k draws the chi-squared statistic for a correct
/// sampler sits far below the dof=63 p=0.999 quantile (~103.4).
TEST_P(ZipfChiSquared, MatchesAnalyticPmf) {
  const double theta = GetParam();
  constexpr std::uint64_t kKeys = 64;
  constexpr std::uint64_t kDraws = 200'000;
  const ZipfGenerator gen(kKeys, theta);

  double pmf_sum = 0.0;
  for (std::uint64_t k = 0; k < kKeys; ++k) pmf_sum += gen.pmf(k);
  EXPECT_NEAR(pmf_sum, 1.0, 1e-9);

  std::vector<std::uint64_t> observed(kKeys, 0);
  Rng rng(42);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const std::uint64_t k = gen.next(rng);
    ASSERT_LT(k, kKeys);
    ++observed[k];
  }

  double chi2 = 0.0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const double expected = static_cast<double>(kDraws) * gen.pmf(k);
    ASSERT_GT(expected, 5.0) << "cell " << k
                             << " too thin for a chi-squared test";
    const double d = static_cast<double>(observed[k]) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 103.4) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfChiSquared,
                         ::testing::Values(0.0, 0.5, 0.99, 1.5));

TEST(Zipf, SkewConcentratesOnHotKeys) {
  const ZipfGenerator uniform(64, 0.0);
  const ZipfGenerator skewed(64, 1.5);
  EXPECT_NEAR(uniform.pmf(0), 1.0 / 64, 1e-12);
  EXPECT_GT(skewed.pmf(0), 0.3);           // rank 0 dominates
  EXPECT_GT(skewed.pmf(0), skewed.pmf(1));  // strictly decreasing in rank
  EXPECT_GT(skewed.pmf(1), skewed.pmf(63));
}

TEST(Zipf, SameSeedSameSequenceDifferentSeedDiffers) {
  const ZipfGenerator gen(1024, 0.99);
  auto draw = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint64_t> keys(1000);
    for (auto& k : keys) k = gen.next(rng);
    return keys;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST(Zipf, RejectsDegenerateArguments) {
  EXPECT_THROW(ZipfGenerator(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(16, -0.1), std::invalid_argument);
  EXPECT_NO_THROW(ZipfGenerator(1, 0.0));
}

// ---- mix presets and config validation -------------------------------------

TEST(OltpConfig, PresetsResolveToDocumentedRatios) {
  struct Want {
    OltpMix mix;
    double read, rmw, scan;
  };
  // Inserts (YCSB D/E) are modeled as updates on the fixed-size table;
  // D's "latest" distribution as the configured zipf (docs/workloads.md).
  const Want wants[] = {
      {OltpMix::kA, 0.5, 0.0, 0.0},  {OltpMix::kB, 0.95, 0.0, 0.0},
      {OltpMix::kC, 1.0, 0.0, 0.0},  {OltpMix::kD, 0.95, 0.0, 0.0},
      {OltpMix::kE, 0.0, 0.0, 0.95}, {OltpMix::kF, 0.5, 0.5, 0.0},
  };
  for (const Want& w : wants) {
    OltpConfig cfg;
    cfg.mix = w.mix;
    const OltpConfig r = cfg.resolved();
    EXPECT_EQ(r.read_ratio, w.read) << to_string(w.mix);
    EXPECT_EQ(r.rmw_ratio, w.rmw) << to_string(w.mix);
    EXPECT_EQ(r.scan_ratio, w.scan) << to_string(w.mix);
    EXPECT_TRUE(r.validate().empty()) << to_string(w.mix);
  }
  // kCustom keeps the free-form knobs verbatim.
  OltpConfig custom;
  custom.read_ratio = 0.25;
  custom.rmw_ratio = 0.25;
  EXPECT_EQ(custom.resolved().read_ratio, 0.25);
  EXPECT_EQ(custom.resolved().rmw_ratio, 0.25);
}

TEST(OltpConfig, MixNamesRoundTrip) {
  for (const OltpMix m : {OltpMix::kCustom, OltpMix::kA, OltpMix::kB,
                          OltpMix::kC, OltpMix::kD, OltpMix::kE, OltpMix::kF}) {
    OltpMix parsed{};
    EXPECT_TRUE(parse_oltp_mix(to_string(m), parsed)) << to_string(m);
    EXPECT_EQ(parsed, m);
  }
  OltpMix parsed{};
  EXPECT_FALSE(parse_oltp_mix("g", parsed));
  EXPECT_TRUE(parse_oltp_mix("", parsed));
  EXPECT_EQ(parsed, OltpMix::kCustom);
}

TEST(OltpConfig, ValidateRejectsInconsistentKnobs) {
  EXPECT_TRUE(OltpConfig{}.validate().empty());
  auto broken = [](auto mutate) {
    OltpConfig c;
    mutate(c);
    return c.validate();
  };
  EXPECT_FALSE(broken([](OltpConfig& c) { c.records = 1; }).empty());
  EXPECT_FALSE(broken([](OltpConfig& c) { c.payload_bytes = 12; }).empty());
  EXPECT_FALSE(broken([](OltpConfig& c) { c.tx_len = 0; }).empty());
  EXPECT_FALSE(broken([](OltpConfig& c) { c.theta = -0.5; }).empty());
  EXPECT_FALSE(broken([](OltpConfig& c) {
                 c.read_ratio = 0.8;
                 c.rmw_ratio = 0.8;
               }).empty());
  EXPECT_FALSE(broken([](OltpConfig& c) { c.scan_len = 0; }).empty());
  EXPECT_FALSE(
      broken([](OltpConfig& c) { c.scan_len = 100'000'000; }).empty());
}

// ---- throughput / latency metrics ------------------------------------------

TEST(OltpMetrics, CommitsPerSimulatedSecond) {
  Stats s;
  s.tx_commits = 1000;
  s.total_cycles = 2'200'000;  // 1ms at the paper's 2.2 GHz
  EXPECT_DOUBLE_EQ(s.commits_per_simsec(), 1e6);
  s.total_cycles = 0;
  EXPECT_DOUBLE_EQ(s.commits_per_simsec(), 0.0);
}

TEST(OltpMetrics, LatencyPercentilesInterpolateWithinBuckets) {
  Stats s;
  EXPECT_DOUBLE_EQ(s.latency_percentile(0.5), 0.0);  // empty histogram

  // All mass in [8, 16): every percentile must land inside that bucket.
  for (int i = 0; i < 100; ++i) s.on_tx_latency(10);
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(s.latency_percentile(p), 8.0) << p;
    EXPECT_LE(s.latency_percentile(p), 16.0) << p;
  }

  // Bimodal: half at 1 cycle, half in [512, 1024) — the tail percentiles
  // must see the slow mode, the low ones the fast mode, monotonically.
  Stats b;
  for (int i = 0; i < 50; ++i) b.on_tx_latency(1);
  for (int i = 0; i < 50; ++i) b.on_tx_latency(700);
  EXPECT_LE(b.latency_percentile(0.25), 2.0);
  EXPECT_GE(b.latency_percentile(0.99), 512.0);
  EXPECT_LE(b.latency_percentile(0.50), b.latency_percentile(0.95));
  EXPECT_LE(b.latency_percentile(0.95), b.latency_percentile(0.99));
}

TEST(OltpMetrics, LatencyHistogramSurvivesBlobRoundTrip) {
  Stats s;
  s.on_tx_latency(0);
  s.on_tx_latency(5);
  s.on_tx_latency(1'000'000);
  const std::string blob = serialize_stats(s);
  EXPECT_NE(blob.find("tx_latency_hist"), std::string::npos);
  Stats back;
  ASSERT_TRUE(deserialize_stats(blob, back));
  EXPECT_EQ(back.tx_latency_hist, s.tx_latency_hist);
}

// ---- end-to-end: the workload under the simulator --------------------------

std::uint64_t hist_total(const Stats& s) {
  return std::accumulate(s.tx_latency_hist.begin(), s.tx_latency_hist.end(),
                         std::uint64_t{0});
}

TEST(OltpWorkload, RmwHeavyMixValidatesAndFillsLatencyHistogram) {
  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.nsub = 4;
  cfg.params.scale = 0.3;
  cfg.params.oltp.mix = OltpMix::kF;  // 50% RMW: exercises the version-
                                      // conservation oracle hardest
  const auto r = run_experiment("oltp", cfg);
  ASSERT_TRUE(r.ok()) << r.validation_error;
  EXPECT_GT(r.stats.tx_commits, 0u);
  EXPECT_GT(r.stats.commits_per_simsec(), 0.0);
  // One latency sample per logical transaction: hardware commits plus
  // software-fallback completions.
  EXPECT_EQ(hist_total(r.stats),
            r.stats.tx_commits + r.stats.fallback_runs);
  EXPECT_LE(r.stats.latency_percentile(0.5), r.stats.latency_percentile(0.99));
}

TEST(OltpWorkload, HighSkewStressesBaselineMoreThanSubblock) {
  auto aborts = [](DetectorKind d, std::uint32_t nsub) {
    ExperimentConfig cfg;
    cfg.detector = d;
    cfg.nsub = nsub;
    cfg.params.scale = 0.3;
    cfg.params.oltp.theta = 1.2;
    cfg.params.oltp.read_ratio = 0.5;
    const auto r = run_experiment("oltp", cfg);
    EXPECT_TRUE(r.ok()) << r.validation_error;
    return r.stats.tx_aborts;
  };
  // Per-line detection sees every false conflict the unpadded record table
  // manufactures; sub-blocking must strictly reduce aborts at high skew.
  EXPECT_LT(aborts(DetectorKind::kSubBlock, 4),
            aborts(DetectorKind::kBaseline, 1));
}

// ---- byte-determinism across --jobs for every preset ------------------------

class OltpRunnerDeterminism : public ::testing::Test {
 protected:
  // Keep runs out of the real cache/manifest and off the terminal.
  void SetUp() override {
    ::setenv("ASFSIM_CACHE_DIR", "oltp_determinism_cache", 1);
    ::setenv("ASFSIM_RUN_MANIFEST", "-", 1);
    ::setenv("ASFSIM_PROGRESS", "0", 1);
  }
  void TearDown() override {
    std::filesystem::remove_all("oltp_determinism_cache");
    ::unsetenv("ASFSIM_CACHE_DIR");
    ::unsetenv("ASFSIM_RUN_MANIFEST");
    ::unsetenv("ASFSIM_PROGRESS");
  }
};

/// serialize_stats covers every Stats field (enforced by asfsim_lint), so
/// string equality is full StatsReport equality.
std::vector<std::string> run_presets(unsigned jobs) {
  runner::RunnerOptions o;
  o.jobs = jobs;
  o.use_cache = false;
  o.manifest_path = "-";
  o.progress = runner::RunnerOptions::Progress::kOff;
  runner::Runner r(o);
  std::vector<std::shared_future<ExperimentResult>> futs;
  for (const OltpMix mix : {OltpMix::kA, OltpMix::kB, OltpMix::kC,
                            OltpMix::kD, OltpMix::kE, OltpMix::kF}) {
    ExperimentConfig cfg;
    cfg.detector = DetectorKind::kSubBlock;
    cfg.nsub = 4;
    cfg.params.threads = 4;
    cfg.params.scale = 0.25;
    cfg.sim.ncores = 4;
    cfg.params.oltp.mix = mix;
    futs.push_back(r.submit("oltp", cfg));
  }
  std::vector<std::string> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(serialize_stats(f.get().stats));
  return out;
}

TEST_F(OltpRunnerDeterminism, EveryPresetByteIdenticalUnderJobs1And8) {
  const auto serial = run_presets(1);
  const auto parallel = run_presets(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "preset " << i;
  }
}

}  // namespace
}  // namespace asfsim
