// Coverage for public-API corners not exercised by the workloads:
// GRBTree::lower_bound/update misses, Task move semantics, the experiment
// runner's timeseries switch, and detector name strings.
#include <gtest/gtest.h>

#include "guest/grbtree.hpp"
#include "harness/experiment.hpp"

namespace asfsim {
namespace {

SimConfig one_core() {
  SimConfig c;
  c.ncores = 1;
  return c;
}

Task<void> lower_bound_script(GuestCtx& c, GRBTree* tree, bool* ok) {
  for (const std::uint64_t k : {10u, 20u, 30u, 40u}) {
    co_await tree->insert(c, k, k * 100);
  }
  std::uint64_t key = 0, val = 0;
  // Exact hit.
  bool found = co_await tree->lower_bound(c, 20, &key, &val);
  if (!found || key != 20 || val != 2000) *ok = false;
  // Between keys: the next larger key wins.
  found = co_await tree->lower_bound(c, 21, &key, &val);
  if (!found || key != 30 || val != 3000) *ok = false;
  // Below the minimum.
  found = co_await tree->lower_bound(c, 1, &key, &val);
  if (!found || key != 10) *ok = false;
  // Above the maximum: not found.
  found = co_await tree->lower_bound(c, 41, &key, &val);
  if (found) *ok = false;
  // Null out-params are allowed.
  found = co_await tree->lower_bound(c, 20, nullptr, nullptr);
  if (!found) *ok = false;

  // update() on a missing key fails without inserting.
  const bool updated = co_await tree->update(c, 99, 1);
  if (updated) *ok = false;
  const bool has = co_await tree->contains(c, 99);
  if (has) *ok = false;
  // erase() on a missing key fails.
  const bool erased = co_await tree->erase(c, 99);
  if (erased) *ok = false;
}

TEST(GRBTreeApi, LowerBoundAndMissPaths) {
  Machine m(one_core(), DetectorKind::kBaseline);
  GRBTree tree = GRBTree::create(m);
  bool ok = true;
  m.spawn(0, lower_bound_script(m.ctx(0), &tree, &ok));
  m.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(tree.host_validate(m), 0);
}

TEST(TaskApi, MoveTransfersOwnership) {
  auto make = []() -> Task<int> { co_return 7; };
  Task<int> a = make();
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  Task<int> c;
  EXPECT_FALSE(c.valid());
  c = std::move(b);
  EXPECT_FALSE(b.valid());
  EXPECT_TRUE(c.valid());
  // Destroying an unstarted task must be safe (scope end).
}

TEST(TaskApi, VoidTaskMoveAndSelfAssignSafety) {
  auto make = []() -> Task<void> { co_return; };
  Task<void> a = make();
  Task<void>& ref = a;
  a = std::move(ref);  // self-move must not destroy the frame
  EXPECT_TRUE(a.valid());
}

TEST(ExperimentApi, TimeseriesFlagControlsRecording) {
  ExperimentConfig cfg;
  cfg.params.scale = 0.2;
  const auto off = run_experiment("counter", cfg);
  EXPECT_TRUE(off.stats.tx_start_cycles.empty());
  cfg.timeseries = true;
  const auto on = run_experiment("counter", cfg);
  EXPECT_EQ(on.stats.tx_start_cycles.size(), on.stats.tx_attempts);
  EXPECT_EQ(on.stats.false_conflict_cycles.size(), on.stats.conflicts_false);
}

TEST(ExperimentApi, WithHelperOverridesDetectorOnly) {
  ExperimentConfig cfg;
  cfg.params.seed = 42;
  cfg.params.scale = 0.5;
  const ExperimentConfig sb = cfg.with(DetectorKind::kSubBlock, 8);
  EXPECT_EQ(sb.detector, DetectorKind::kSubBlock);
  EXPECT_EQ(sb.nsub, 8u);
  EXPECT_EQ(sb.params.seed, 42u);
  EXPECT_DOUBLE_EQ(sb.params.scale, 0.5);
}

TEST(Names, EnumToStringRoundTrips) {
  EXPECT_STREQ(to_string(ConflictType::kWAR), "WAR");
  EXPECT_STREQ(to_string(ConflictType::kRAW), "RAW");
  EXPECT_STREQ(to_string(ConflictType::kWAW), "WAW");
  EXPECT_STREQ(to_string(AbortCause::kCapacity), "capacity");
  EXPECT_STREQ(to_string(AbortCause::kLockWait), "lock-wait");
  EXPECT_STREQ(to_string(DetectorKind::kSubBlockWawLine), "subblock-wawline");
  EXPECT_STREQ(to_string(SubBlockState::kSpecWrite), "S-WR");
  EXPECT_STREQ(to_string(TxEventKind::kFallback), "fallback");
}

TEST(MachineApi, PokePeekRoundTripAllSizes) {
  Machine m(one_core(), DetectorKind::kBaseline);
  const Addr a = m.galloc().alloc_lines(1);
  m.poke(a, 1, 0xAB);
  m.poke(a + 2, 2, 0xCDEF);
  m.poke(a + 4, 4, 0x12345678);
  m.poke(a + 8, 8, 0x1122334455667788ull);
  EXPECT_EQ(m.peek(a, 1), 0xABu);
  EXPECT_EQ(m.peek(a + 2, 2), 0xCDEFu);
  EXPECT_EQ(m.peek(a + 4, 4), 0x12345678u);
  EXPECT_EQ(m.peek(a + 8, 8), 0x1122334455667788ull);
}

}  // namespace
}  // namespace asfsim
