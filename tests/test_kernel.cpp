// Unit tests: simulation kernel scheduling, determinism, failure modes.
#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"

namespace asfsim {
namespace {

/// Minimal leaf awaitable for kernel-only tests.
struct Sleep {
  Kernel* k;
  CoreId core;
  Cycle delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    k->schedule(core, h, k->now() + delay);
  }
  void await_resume() const noexcept {}
};

Task<void> ticker(Kernel* k, CoreId core, int n, Cycle step,
                  std::vector<std::pair<CoreId, Cycle>>* log) {
  for (int i = 0; i < n; ++i) {
    co_await Sleep{k, core, step};
    log->emplace_back(core, k->now());
  }
}

Task<void> nop(Kernel* k, CoreId core) { co_await Sleep{k, core, 1}; }

Task<void> parked(Kernel*, CoreId) {
  struct Never {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) {}  // no event scheduled
    void await_resume() const noexcept {}
  };
  co_await Never{};
}

TEST(Kernel, RequiresCores) { EXPECT_THROW(Kernel{0}, std::invalid_argument); }

TEST(Kernel, RunsToCompletionAndAdvancesTime) {
  Kernel k(2);
  std::vector<std::pair<CoreId, Cycle>> log;
  k.spawn(0, ticker(&k, 0, 3, 10, &log));
  k.spawn(1, ticker(&k, 1, 2, 25, &log));
  const Cycle end = k.run();
  EXPECT_EQ(end, 50u);
  EXPECT_TRUE(k.core_done(0));
  EXPECT_TRUE(k.core_done(1));
  EXPECT_EQ(k.core_finish_cycle(0), 30u);
  EXPECT_EQ(k.core_finish_cycle(1), 50u);
  ASSERT_EQ(log.size(), 5u);
}

TEST(Kernel, InterleavingIsDeterministic) {
  auto run_once = [] {
    Kernel k(4);
    std::vector<std::pair<CoreId, Cycle>> log;
    for (CoreId c = 0; c < 4; ++c) {
      k.spawn(c, ticker(&k, c, 5, 7 + c, &log));
    }
    k.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Kernel, SameCycleEventsServeFifo) {
  Kernel k(2);
  std::vector<std::pair<CoreId, Cycle>> log;
  k.spawn(0, ticker(&k, 0, 1, 10, &log));
  k.spawn(1, ticker(&k, 1, 1, 10, &log));
  k.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 0u) << "earlier-scheduled event first";
  EXPECT_EQ(log[1].first, 1u);
  EXPECT_EQ(log[0].second, log[1].second);
}

TEST(Kernel, DetectsGuestDeadlock) {
  Kernel k(1);
  k.spawn(0, parked(&k, 0));
  EXPECT_THROW(k.run(), DeadlockError);
}

TEST(Kernel, EnforcesCycleLimit) {
  Kernel k(1);
  std::vector<std::pair<CoreId, Cycle>> log;
  k.spawn(0, ticker(&k, 0, 1000, 100, &log));
  EXPECT_THROW(k.run(500), CycleLimitError);
}

TEST(Kernel, RejectsDoubleSpawn) {
  Kernel k(1);
  k.spawn(0, nop(&k, 0));
  EXPECT_THROW(k.spawn(0, nop(&k, 0)), std::logic_error);
}

TEST(Kernel, GuestExceptionSurfaces) {
  struct Boom {};
  auto thrower = [](Kernel* k, CoreId core) -> Task<void> {
    co_await Sleep{k, core, 5};
    throw Boom{};
  };
  Kernel k(1);
  k.spawn(0, thrower(&k, 0));
  EXPECT_THROW(k.run(), Boom);
}

TEST(Kernel, CountsProcessedEvents) {
  Kernel k(1);
  std::vector<std::pair<CoreId, Cycle>> log;
  k.spawn(0, ticker(&k, 0, 4, 2, &log));
  k.run();
  // 1 initial resume + 4 sleep completions.
  EXPECT_EQ(k.events_processed(), 5u);
}

}  // namespace
}  // namespace asfsim
